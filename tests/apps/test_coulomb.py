"""Tests for the Coulomb application presets."""

import pytest

from repro.apps.coulomb import (
    CoulombApplication,
    calibrate_task_count,
    coulomb_rank,
    probe_item,
)
from repro.errors import ClusterConfigError
from repro.hardware.cpu_model import CpuModel
from repro.hardware.specs import TITAN_CPU
from repro.kernels.cpu_kernel import CpuMtxmKernel
from repro.runtime.task import BatchStats


def test_rank_grows_with_precision():
    assert coulomb_rank(1e-8) > coulomb_rank(1e-4)


def test_rank_in_paper_order_of_magnitude():
    """'Typical values of M and k are 100 and 10-20'."""
    assert 40 <= coulomb_rank(1e-8) <= 250
    assert 60 <= coulomb_rank(1e-12) <= 400


def test_probe_item_shape():
    item = probe_item(3, 10, 100)
    assert item.step_q == 20
    assert item.step_rows == 400
    assert item.steps == 300
    assert item.flops > 0


def test_calibration_hits_target():
    """The calibrated count reproduces the target CPU time to rounding."""
    rank = 100
    n = calibrate_task_count(132.5, 3, 10, rank, threads=1)
    kernel = CpuMtxmKernel(CpuModel(TITAN_CPU))
    stats = BatchStats.of([probe_item(3, 10, rank)] * 60)
    per_task = kernel.batch_timing(stats, 1).seconds / 60
    assert n * per_task == pytest.approx(132.5, rel=0.01)


def test_calibration_scales_inversely_with_threads():
    n1 = calibrate_task_count(100.0, 3, 10, 100, threads=1)
    n16 = calibrate_task_count(100.0, 3, 10, 100, threads=16)
    assert n16 > 4 * n1


def test_calibration_rejects_bad_target():
    with pytest.raises(ClusterConfigError):
        calibrate_task_count(0.0, 3, 10, 100, threads=1)


def test_table_presets_construct():
    t1 = CoulombApplication.table1()
    assert t1.k == 10 and t1.precision == 1e-8
    assert t1.n_tasks > 1000
    t4 = CoulombApplication.table4()
    assert t4.n_tasks == 154_468  # paper-stated count
    t5 = CoulombApplication.table5()
    assert t5.k == 30


def test_workload_generation_from_preset():
    app = CoulombApplication(k=10, precision=1e-6, n_tasks=500, n_tree_leaves=64)
    wl = app.workload()
    assert len(wl.tasks) == 500
    assert wl.tasks[0].item.step_q == 20


def test_real_instance_is_validated_elsewhere_but_constructs():
    density, operator, exact = CoulombApplication.real_instance(
        k=5, thresh=5e-3, eps=1e-3
    )
    assert density.dim == 3
    assert operator.k == 5
    assert exact(0.5) > 0
