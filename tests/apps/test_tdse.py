"""Tests for the 4-D TDSE application."""

from repro.apps.tdse import TDSE_TASKS, TdseApplication


def test_paper_parameters():
    app = TdseApplication()
    assert app.dim == 4
    assert app.k == 14
    assert app.tensor_side == 28
    assert app.n_tasks == TDSE_TASKS == 542_113


def test_workload_scaled_down():
    app = TdseApplication(n_tasks=2000, n_tree_leaves=128)
    wl = app.workload()
    assert len(wl.tasks) == 2000
    item = wl.tasks[0].item
    assert item.step_q == 28
    assert item.step_rows == 28**3
    assert item.steps == app.rank * 4


def test_tasks_heavier_than_coulomb():
    """'These tasks have more computation than the tasks for the 3-D
    Coulomb application.'"""
    from repro.apps.coulomb import probe_item

    tdse_item = TdseApplication(n_tasks=1, n_tree_leaves=16).workload().tasks[0].item
    coulomb = probe_item(3, 10, 100)
    assert tdse_item.flops > 10 * coulomb.flops
