"""The real-tree -> cluster-task bridge must match the reference Apply's
work accounting."""

import pytest

from repro.apps.workloads import tasks_from_function
from repro.cluster.simulation import ClusterSimulation
from repro.dht.process_map import HashProcessMap
from repro.operators.convolution import ApplyStats


@pytest.fixture(scope="module")
def real_tasks(f2d, gauss_op_2d):
    return tasks_from_function(f2d, gauss_op_2d)


def test_task_count_matches_reference_apply(f2d, gauss_op_2d, real_tasks):
    stats = ApplyStats()
    gauss_op_2d.apply(f2d, stats=stats)
    assert len(real_tasks) == stats.tasks


def test_tasks_carry_real_tree_keys(f2d, real_tasks):
    tree_keys = set(f2d.tree.keys())
    for t in real_tasks[:200]:
        assert t.key in tree_keys
        assert t.neighbor.level == t.key.level


def test_task_shapes(f2d, gauss_op_2d, real_tasks):
    q = 2 * gauss_op_2d.k
    for t in real_tasks[:100]:
        assert t.item.step_q == q
        assert t.item.steps % f2d.dim == 0
        assert t.item.flops > 0


def test_input_function_unmodified(f2d, gauss_op_2d):
    form_before = f2d.form
    tasks_from_function(f2d, gauss_op_2d)
    assert f2d.form == form_before


def test_real_tasks_run_through_cluster(real_tasks):
    sim = ClusterSimulation(4, HashProcessMap(4), mode="hybrid")
    result = sim.run(real_tasks)
    assert result.total_tasks == len(real_tasks)
    assert result.makespan_seconds > 0


def test_kept_rank_varies_with_screening(f3d, coulomb_op_small):
    """Screening makes per-task work irregular — the paper's premise.

    Needs an operator of rank > 1 (the 2-D fixture is a single
    Gaussian), so this uses the small Coulomb operator.
    """
    tasks = tasks_from_function(f3d, coulomb_op_small)
    steps = {t.item.steps for t in tasks}
    assert len(steps) > 1
