"""Tests for synthetic trees and workloads."""

import pytest

from repro.apps.workloads import SyntheticApplyWorkload, synthetic_tree_keys
from repro.errors import ClusterConfigError
from repro.mra.key import Key


def test_tree_keys_form_a_tree():
    keys = synthetic_tree_keys(2, 64, seed=1)
    key_set = set(keys)
    assert Key.root(2) in key_set
    for key in keys:
        if key.level > 0:
            assert key.parent() in key_set


def test_tree_determinism():
    a = synthetic_tree_keys(3, 128, seed=42)
    b = synthetic_tree_keys(3, 128, seed=42)
    assert a == b


def test_different_seeds_differ():
    a = set(synthetic_tree_keys(2, 128, seed=1))
    b = set(synthetic_tree_keys(2, 128, seed=2))
    assert a != b


def test_trees_are_unbalanced():
    """The generated trees are 'highly unbalanced' (paper Figure 1): one
    level-1 subtree holds far more than its uniform 1/2^d share."""
    keys = synthetic_tree_keys(2, 256, seed=3, skew=2.0)
    counts = {}
    for k in keys:
        if k.level >= 1:
            a = k
            while a.level > 1:
                a = a.parent()
            counts[a] = counts.get(a, 0) + 1
    heaviest = max(counts.values()) / sum(counts.values())
    assert heaviest > 0.4  # uniform share would be 0.25


def test_leaf_count_reached():
    keys = synthetic_tree_keys(2, 100, seed=4)
    key_set = set(keys)
    leaves = [k for k in keys if not any(c in key_set for c in k.children())]
    assert len(leaves) >= 100


def test_invalid_leaf_count():
    with pytest.raises(ClusterConfigError):
        synthetic_tree_keys(2, 0, seed=1)


@pytest.fixture(scope="module")
def workload():
    return SyntheticApplyWorkload(
        dim=3, k=10, rank=80, n_tasks=5000, n_tree_leaves=128, seed=7
    )


def test_exact_task_count(workload):
    assert len(workload.tasks) == 5000


def test_task_shapes_match_parameters(workload):
    q = 20
    for task in workload.tasks[:50]:
        item = task.item
        assert item.step_q == q
        assert item.step_rows == q * q
        assert item.steps == 80 * 3
        assert item.input_bytes == q**3 * 8
        assert len(item.block_keys) == 80


def test_flops_include_corner_share(workload):
    q = 20
    base = 80 * 3 * 2 * (q**2) * q * q
    expected = int(base * (1 + 2.0**-4))
    assert workload.tasks[0].item.flops == expected
    assert workload.total_flops == expected * 5000


def test_neighbors_are_valid_same_level(workload):
    for task in workload.tasks[:200]:
        assert task.neighbor.level == task.key.level
        delta = tuple(
            a - b for a, b in zip(task.neighbor.translation, task.key.translation)
        )
        assert max(abs(d) for d in delta) <= 1


def test_kinds_partition_by_level(workload):
    for task in workload.tasks[:200]:
        level, dim, q = task.item.kind.signature
        assert level == task.key.level
        assert (dim, q) == (3, 20)


def test_block_key_tuples_shared(workload):
    """Same-level tasks reuse block-key tuples (memory and cache realism)."""
    by_level = {}
    for task in workload.tasks[:500]:
        key = (task.key.level, task.item.block_keys[0][1])
        if key in by_level:
            assert by_level[key] is task.item.block_keys
        else:
            by_level[key] = task.item.block_keys


def test_determinism_of_workload():
    a = SyntheticApplyWorkload(dim=2, k=5, rank=10, n_tasks=100, seed=9)
    b = SyntheticApplyWorkload(dim=2, k=5, rank=10, n_tasks=100, seed=9)
    assert [t.key for t in a.tasks] == [t.key for t in b.tasks]


def test_task_count_by_level_sums(workload):
    hist = workload.task_count_by_level()
    assert sum(hist.values()) == 5000


def test_invalid_workload():
    with pytest.raises(ClusterConfigError):
        SyntheticApplyWorkload(dim=0, k=5, rank=10, n_tasks=10)
