"""Tests for asynchronous batching, incl. no-loss/no-dup properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RuntimeConfigError
from repro.runtime.batching import BatchAccumulator
from repro.runtime.task import TaskKind, WorkItem


def item(kind_name: str, idx: int) -> WorkItem:
    return WorkItem(kind=TaskKind(kind_name, 0), flops=idx)


def test_groups_by_kind():
    acc = BatchAccumulator(flush_interval=1.0)
    for i in range(3):
        acc.submit(item("a", i), now=0.0)
    acc.submit(item("b", 0), now=0.0)
    batches = acc.flush(now=0.5)
    kinds = {b.kind.compute_name: b.size for b in batches}
    assert kinds == {"a": 3, "b": 1}


def test_preserves_submission_order_within_kind():
    acc = BatchAccumulator(flush_interval=1.0)
    for i in range(5):
        acc.submit(item("a", i), now=float(i) * 0.01)
    (batch,) = acc.flush(now=1.0)
    assert [it.flops for it in batch.items] == [0, 1, 2, 3, 4]


def test_size_cap_flushes_eagerly():
    acc = BatchAccumulator(flush_interval=100.0, max_batch_size=3)
    out = [acc.submit(item("a", i), now=0.0) for i in range(7)]
    eager = [b for b in out if b is not None]
    assert len(eager) == 2
    assert all(b.size == 3 for b in eager)
    assert acc.pending == 1


def test_next_deadline_tracks_earliest_open_batch():
    acc = BatchAccumulator(flush_interval=0.5)
    assert acc.next_deadline() is None
    acc.submit(item("a", 0), now=1.0)
    acc.submit(item("b", 0), now=2.0)
    assert acc.next_deadline() == pytest.approx(1.5)


def test_due_respects_timer():
    acc = BatchAccumulator(flush_interval=0.5)
    acc.submit(item("a", 0), now=0.0)
    acc.submit(item("b", 0), now=0.4)
    due = acc.due(now=0.5)
    assert [k.compute_name for k in due] == ["a"]


def test_flush_records_timestamps():
    acc = BatchAccumulator(flush_interval=0.5)
    acc.submit(item("a", 0), now=1.25)
    (batch,) = acc.flush(now=2.0)
    # repro: noqa[FLT001] below - timestamps are stored verbatim, never accumulated
    assert batch.created_at == 1.25  # repro: noqa[FLT001]
    assert batch.flushed_at == 2.0  # repro: noqa[FLT001]


def test_counters():
    acc = BatchAccumulator(flush_interval=1.0)
    for i in range(4):
        acc.submit(item("a", i), now=0.0)
    assert acc.submitted == 4
    assert acc.pending == 4
    acc.flush(now=0.1)
    assert acc.flushed == 4
    assert acc.pending == 0


def test_invalid_config():
    with pytest.raises(RuntimeConfigError):
        BatchAccumulator(flush_interval=0.0)
    with pytest.raises(RuntimeConfigError):
        BatchAccumulator(max_batch_size=0)


@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 1000)),
        max_size=200,
    ),
    st.integers(min_value=1, max_value=16),
)
@settings(max_examples=60, deadline=None)
def test_no_item_lost_or_duplicated(submissions, cap):
    """Every submitted item comes out exactly once, whatever the flush
    pattern — the core correctness property of the batching runtime."""
    acc = BatchAccumulator(flush_interval=0.25, max_batch_size=cap)
    seen = []
    now = 0.0
    for i, (kind_name, _x) in enumerate(submissions):
        now += 0.05
        eager = acc.submit(item(kind_name, i), now=now)
        if eager is not None:
            seen.extend(eager.items)
        for batch in acc.flush(now, acc.due(now)):
            seen.extend(batch.items)
    for batch in acc.flush(now + 1.0):
        seen.extend(batch.items)
    assert sorted(it.flops for it in seen) == list(range(len(submissions)))
    assert acc.pending == 0
    assert acc.submitted == acc.flushed == len(submissions)


@given(st.integers(1, 50), st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_eager_batches_never_exceed_cap(n, cap):
    acc = BatchAccumulator(flush_interval=10.0, max_batch_size=cap)
    sizes = []
    for i in range(n):
        batch = acc.submit(item("a", i), now=0.0)
        if batch:
            sizes.append(batch.size)
    sizes.extend(b.size for b in acc.flush(now=0.0))
    assert all(s <= cap for s in sizes)
    assert sum(sizes) == n
