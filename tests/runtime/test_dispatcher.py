"""Tests for the optimal-overlap dispatcher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RuntimeConfigError
from repro.hardware.cpu_model import CpuModel
from repro.hardware.gpu_model import GpuModel
from repro.hardware.specs import TITAN_NODE
from repro.kernels.cpu_kernel import CpuMtxmKernel
from repro.kernels.custom_gpu import CustomGpuKernel
from repro.runtime.batching import Batch
from repro.runtime.dispatcher import (
    AdaptiveDispatcher,
    HybridDispatcher,
    optimal_split,
    overlap_time,
)
from repro.runtime.task import BatchStats, TaskKind, WorkItem


def test_optimal_split_formula():
    assert optimal_split(2.0, 1.0) == pytest.approx(1.0 / 3.0)
    assert optimal_split(1.0, 1.0) == pytest.approx(0.5)


def test_overlap_time_formula():
    """The paper: minimal runtime is m n / (m + n)."""
    assert overlap_time(2.0, 1.0) == pytest.approx(2.0 / 3.0)
    assert overlap_time(0.0, 5.0) == 0.0  # repro: noqa[FLT001] - exact zero branch


@given(st.floats(0.01, 1000), st.floats(0.01, 1000))
@settings(max_examples=100, deadline=None)
def test_split_minimizes_maximum(m, n):
    """k = n/(m+n) minimises max(m k, n (1 - k)) over a fine grid."""
    k = optimal_split(m, n)
    best = max(m * k, n * (1 - k))
    for i in range(101):
        kk = i / 100.0
        assert best <= max(m * kk, n * (1 - kk)) + 1e-9


@given(st.floats(0.01, 1000), st.floats(0.01, 1000))
@settings(max_examples=100, deadline=None)
def test_overlap_time_never_beats_either_device_alone_doubled(m, n):
    t = overlap_time(m, n)
    assert t <= min(m, n) + 1e-12
    assert t >= min(m, n) / 2.0 - 1e-12


def test_invalid_inputs():
    with pytest.raises(RuntimeConfigError):
        optimal_split(-1.0, 1.0)
    with pytest.raises(RuntimeConfigError):
        optimal_split(0.0, 0.0)
    with pytest.raises(RuntimeConfigError):
        overlap_time(-1.0, 2.0)


def _make_dispatcher(mode="hybrid"):
    return HybridDispatcher(
        CpuMtxmKernel(CpuModel(TITAN_NODE.cpu)),
        CustomGpuKernel(GpuModel(TITAN_NODE.gpu)),
        cpu_threads=10,
        gpu_streams=5,
        mode=mode,
    )


def _batch(n_items=60, flops=10_000_000):
    kind = TaskKind("t", 0)
    items = [
        WorkItem(kind=kind, flops=flops, steps=300, step_rows=400, step_q=20,
                 input_bytes=64000, output_bytes=64000)
        for _ in range(n_items)
    ]
    return Batch(kind=kind, items=items, created_at=0.0, flushed_at=0.0)


def test_plan_hybrid_splits_both_ways():
    plan = _make_dispatcher("hybrid").plan(_batch())
    assert plan.cpu_items and plan.gpu_items
    assert len(plan.cpu_items) + len(plan.gpu_items) == 60
    assert 0.0 < plan.cpu_fraction < 1.0


def test_plan_cpu_mode_everything_on_cpu():
    plan = _make_dispatcher("cpu").plan(_batch())
    assert len(plan.cpu_items) == 60
    assert not plan.gpu_items
    assert plan.cpu_fraction == 1.0  # repro: noqa[FLT001] - pure mode sets it verbatim


def test_plan_gpu_mode_everything_on_gpu():
    plan = _make_dispatcher("gpu").plan(_batch())
    assert not plan.cpu_items
    assert len(plan.gpu_items) == 60
    assert plan.cpu_fraction == 0.0  # repro: noqa[FLT001] - pure mode sets it verbatim


def test_split_tracks_flops_fraction():
    plan = _make_dispatcher("hybrid").plan(_batch(n_items=100))
    total = sum(it.flops for it in plan.cpu_items + plan.gpu_items)
    cpu_share = sum(it.flops for it in plan.cpu_items) / total
    assert abs(cpu_share - plan.cpu_fraction) < 0.05


def test_faster_gpu_means_smaller_cpu_share():
    """If the GPU estimate improves, the CPU keeps less work."""
    disp = _make_dispatcher("hybrid")
    plan_small = disp.plan(_batch(flops=1_000_000))
    disp_fast_gpu = _make_dispatcher("hybrid")
    disp_fast_gpu.transfer_estimator = lambda stats: 0.0
    plan_zero_transfer = disp_fast_gpu.plan(_batch(flops=1_000_000))
    assert plan_zero_transfer.cpu_fraction <= plan_small.cpu_fraction + 1e-9


def test_unknown_mode_rejected():
    with pytest.raises(RuntimeConfigError):
        _make_dispatcher("magic")


def test_invalid_parallelism_rejected():
    with pytest.raises(RuntimeConfigError):
        HybridDispatcher(
            CpuMtxmKernel(CpuModel(TITAN_NODE.cpu)),
            CustomGpuKernel(GpuModel(TITAN_NODE.gpu)),
            cpu_threads=0,
            gpu_streams=5,
        )


def test_zero_flop_batch_reports_item_fraction():
    """Regression: an all-zero-FLOP batch with a non-empty CPU share used
    to report cpu_fraction = 0.0, hiding where the items actually went."""
    kind = TaskKind("data_only", 0)
    items = [
        WorkItem(kind=kind, flops=0, input_bytes=64000, output_bytes=64000)
        for _ in range(10)
    ]
    cpu_items, gpu_items = items[:4], items[4:]
    k = HybridDispatcher._fraction(cpu_items, items)
    assert k == pytest.approx(0.4)
    assert HybridDispatcher._fraction([], []) == 0.0  # repro: noqa[FLT001] - exact zero branch


def test_per_plan_transfer_estimator_does_not_stick():
    """plan() takes the transfer estimator per call; the instance default
    must survive untouched so shared dispatchers stay uncorrupted."""
    disp = _make_dispatcher("hybrid")
    default = disp.transfer_estimator
    expensive = lambda stats: 10.0  # noqa: E731
    plan_slow = disp.plan(_batch(flops=1_000_000), transfer_estimator=expensive)
    assert disp.transfer_estimator is default
    plan_default = disp.plan(_batch(flops=1_000_000))
    # a 10s transfer charge must push work off the GPU
    assert plan_slow.cpu_fraction >= plan_default.cpu_fraction


def _make_adaptive(**kwargs):
    return AdaptiveDispatcher(
        CpuMtxmKernel(CpuModel(TITAN_NODE.cpu)),
        CustomGpuKernel(GpuModel(TITAN_NODE.gpu)),
        cpu_threads=10,
        gpu_streams=5,
        **kwargs,
    )


def test_adaptive_validates_parameters():
    with pytest.raises(RuntimeConfigError):
        _make_adaptive(cpu_scale=0.0)
    with pytest.raises(RuntimeConfigError):
        _make_adaptive(gpu_scale=-1.0)
    with pytest.raises(RuntimeConfigError):
        _make_adaptive(ewma_alpha=0.0)
    with pytest.raises(RuntimeConfigError):
        _make_adaptive(ewma_alpha=1.5)


def test_observe_moves_scales_toward_measured_ratio():
    disp = _make_adaptive(ewma_alpha=0.5)
    disp.observe(
        est_cpu_seconds=1.0,
        measured_cpu_seconds=2.0,
        est_gpu_seconds=1.0,
        measured_gpu_seconds=0.5,
    )
    assert disp.cpu_time_scale == pytest.approx(1.5)
    assert disp.gpu_time_scale == pytest.approx(0.75)
    assert disp.history == [(1.5, 0.75)]


def test_observe_ignores_absent_shares():
    disp = _make_adaptive()
    disp.observe(est_gpu_seconds=1.0, measured_gpu_seconds=1.0)
    assert disp.cpu_time_scale == 1.0  # repro: noqa[FLT001] - never updated, still the exact default


def test_adaptive_converges_within_ten_batches():
    """Acceptance: started 2x miscalibrated, the planned CPU fraction
    reaches within 10% of the well-calibrated dispatcher's within 10
    plan/observe rounds."""
    reference = _make_dispatcher("hybrid")
    optimal_k = reference.plan(_batch()).cpu_fraction
    disp = _make_adaptive(gpu_scale=2.0)
    k = None
    for _ in range(10):
        plan = disp.plan(_batch())
        k = plan.cpu_fraction
        # measured == the raw model (the simulated hardware *is* the
        # model): feed back unscaled estimates for the dispatched share
        gpu_raw = (
            disp.gpu_kernel.batch_timing(BatchStats.of(plan.gpu_items), 5).seconds
            if plan.gpu_items
            else 0.0
        )
        disp.observe(
            est_cpu_seconds=1.0,
            measured_cpu_seconds=1.0,
            est_gpu_seconds=gpu_raw,
            measured_gpu_seconds=gpu_raw,
        )
    assert k == pytest.approx(optimal_k, abs=0.1 * max(optimal_k, 1e-9))
