"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.runtime.events import AllOf, Environment, Resource, des_engine


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(2.5)
        log.append(env.now)
        yield env.timeout(1.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [2.5, 4.0]


def test_processes_interleave():
    env = Environment()
    log = []

    def worker(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(worker("b", 2.0))
    env.process(worker("a", 1.0))
    env.run()
    assert log == [(1.0, "a"), (2.0, "b")]


def test_same_time_events_fifo():
    env = Environment()
    log = []

    def worker(name):
        yield env.timeout(1.0)
        log.append(name)

    for name in "abc":
        env.process(worker(name))
    env.run()
    assert log == ["a", "b", "c"]


def test_process_return_value_propagates():
    env = Environment()
    result = []

    def child():
        yield env.timeout(1.0)
        return 42

    def parent():
        value = yield env.process(child())
        result.append(value)

    env.process(parent())
    env.run()
    assert result == [42]


def test_yield_none_is_cooperative():
    env = Environment()
    steps = []

    def proc():
        steps.append("one")
        yield None
        steps.append("two")

    env.process(proc())
    env.run()
    assert steps == ["one", "two"]
    assert env.now == 0.0  # repro: noqa[FLT001] - no timeouts ran, clock never moved


def test_event_succeed_with_value():
    env = Environment()
    got = []
    ev = env.event()

    def waiter():
        value = yield ev
        got.append((env.now, value))

    def trigger():
        yield env.timeout(3.0)
        ev.succeed("payload")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert got == [(3.0, "payload")]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_yield_garbage_rejected():
    env = Environment()

    def proc():
        yield "not an event"

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_run_until_stops_clock():
    env = Environment()

    def proc():
        yield env.timeout(10.0)

    env.process(proc())
    end = env.run(until=4.0)
    assert end == 4.0  # repro: noqa[FLT001] - run(until=...) returns the bound verbatim


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_allof_waits_for_all():
    env = Environment()
    done_at = []

    def worker(delay):
        yield env.timeout(delay)

    def waiter():
        yield AllOf(env, [env.process(worker(1.0)), env.process(worker(5.0))])
        done_at.append(env.now)

    env.process(waiter())
    env.run()
    assert done_at == [5.0]  # repro: noqa[FLT001] - one hop from t=0, exact


def test_allof_empty_fires_immediately():
    env = Environment()
    fired = []

    def waiter():
        yield AllOf(env, [])
        fired.append(env.now)

    env.process(waiter())
    env.run()
    assert fired == [0.0]


def test_resource_serializes():
    env = Environment()
    log = []
    res = Resource(env, capacity=1)

    def user(name):
        req = res.request()
        yield req
        log.append((env.now, name, "start"))
        yield env.timeout(2.0)
        res.release()
        log.append((env.now, name, "end"))

    env.process(user("a"))
    env.process(user("b"))
    env.run()
    assert log == [
        (0.0, "a", "start"),
        (2.0, "a", "end"),
        (2.0, "b", "start"),
        (4.0, "b", "end"),
    ]


def test_resource_capacity_two_overlaps():
    env = Environment()
    res = Resource(env, capacity=2)
    starts = []

    def user():
        yield res.request()
        starts.append(env.now)
        yield env.timeout(1.0)
        res.release()

    for _ in range(3):
        env.process(user())
    env.run()
    assert starts == [0.0, 0.0, 1.0]


def test_resource_busy_time():
    env = Environment()
    res = Resource(env, capacity=1)

    def user():
        yield res.request()
        yield env.timeout(3.0)
        res.release()

    env.process(user())
    env.run()
    assert res.busy_time() == pytest.approx(3.0)


def test_resource_release_idle_rejected():
    env = Environment()
    res = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


# -- run(until=) boundary contract (inclusive; pinned for both engines) ----------


@pytest.mark.parametrize("engine", ["heap", "calendar"])
def test_run_until_is_inclusive_at_exact_boundary(engine):
    """An event scheduled at exactly ``until`` fires before the run
    stops — the bound is inclusive, and the calendar queue's bucket
    boundaries land on such instants constantly."""
    with des_engine(engine):
        env = Environment()
    fired = []

    def proc():
        yield env.timeout(4.0)
        fired.append(env.now)
        yield env.timeout(1.0)
        fired.append(env.now)

    env.process(proc())
    end = env.run(until=4.0)
    assert fired == [4.0]  # repro: noqa[FLT001] - the boundary instant is the contract under test
    assert end == 4.0  # repro: noqa[FLT001] - run(until=...) returns the bound verbatim


@pytest.mark.parametrize("engine", ["heap", "calendar"])
def test_run_until_leaves_strictly_later_events_pending(engine):
    with des_engine(engine):
        env = Environment()
    fired = []

    def proc():
        yield env.timeout(4.0000000001)
        fired.append(env.now)

    env.process(proc())
    end = env.run(until=4.0)
    assert fired == []
    assert end == 4.0  # repro: noqa[FLT001] - run(until=...) returns the bound verbatim
    # a later run picks the pending event back up
    env.run()
    assert fired == [4.0000000001]  # repro: noqa[FLT001] - single scheduled instant, exact


@pytest.mark.parametrize("engine", ["heap", "calendar"])
def test_run_until_in_the_past_never_rewinds(engine):
    with des_engine(engine):
        env = Environment()

    def proc():
        yield env.timeout(5.0)
        yield env.timeout(5.0)

    env.process(proc())
    env.run(until=5.0)
    assert env.now == 5.0  # repro: noqa[FLT001] - one hop from t=0, exact
    end = env.run(until=1.0)
    assert end == 5.0  # repro: noqa[FLT001] - a past bound must not rewind the clock
    assert env.now == 5.0  # repro: noqa[FLT001] - a past bound must not rewind the clock


@pytest.mark.parametrize("engine", ["heap", "calendar"])
def test_run_until_with_empty_queue_returns_now(engine):
    with des_engine(engine):
        env = Environment()
    assert env.run(until=9.0) == 0.0  # repro: noqa[FLT001] - nothing scheduled, clock never moved
