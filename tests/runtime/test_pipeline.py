"""Tests for the pipelined node runtime: overlap, admission, feedback."""

import pytest

from repro.errors import RuntimeConfigError
from repro.hardware.specs import TITAN_NODE
from repro.kernels.cpu_kernel import CpuMtxmKernel
from repro.kernels.custom_gpu import CustomGpuKernel
from repro.hardware.cpu_model import CpuModel
from repro.hardware.gpu_model import GpuModel
from repro.runtime.dispatcher import AdaptiveDispatcher, HybridDispatcher
from repro.runtime.node import NodeRuntime
from repro.runtime.trace import Tracer
from tests.conftest import make_runtime
from tests.runtime.test_node_runtime import make_tasks


def make_pipeline_runtime(
    *,
    pipelined: bool = True,
    adaptive: bool = False,
    gpu_scale: float = 1.0,
    max_batch_size: int = 10,
    **kwargs,
) -> NodeRuntime:
    cpu = CpuMtxmKernel(CpuModel(TITAN_NODE.cpu))
    gpu = CustomGpuKernel(GpuModel(TITAN_NODE.gpu))
    if adaptive:
        dispatcher = AdaptiveDispatcher(
            cpu, gpu, cpu_threads=10, gpu_streams=5, gpu_scale=gpu_scale
        )
    else:
        dispatcher = HybridDispatcher(
            cpu, gpu, cpu_threads=10, gpu_streams=5, mode="hybrid"
        )
    return NodeRuntime(
        TITAN_NODE,
        dispatcher,
        flush_interval=0.005,
        max_batch_size=max_batch_size,
        pipelined=pipelined,
        **kwargs,
    )


def mixed_tasks(n):
    """Irregular stream: interleave a light and a heavy task shape so
    consecutive batches belong to kinds with very different weights."""
    light = make_tasks(n // 2, flops=8_000_000, q=16, rank=40)
    heavy = make_tasks(n - n // 2, flops=120_000_000, q=28, rank=80)
    out = []
    for a, b in zip(light, heavy):
        out.append(a)
        out.append(b)
    return out


def test_pipelined_strictly_faster_than_serialized():
    pipelined = make_pipeline_runtime(pipelined=True).execute(mixed_tasks(60))
    serialized = make_pipeline_runtime(pipelined=False).execute(mixed_tasks(60))
    assert pipelined.total_seconds < serialized.total_seconds


def test_pipelined_results_match_serialized():
    """Pipelining changes timing, never the work done."""
    p = make_pipeline_runtime(pipelined=True).execute(mixed_tasks(40))
    s = make_pipeline_runtime(pipelined=False).execute(mixed_tasks(40))
    assert p.n_cpu_items + p.n_gpu_items == 40
    assert s.n_cpu_items + s.n_gpu_items == 40
    assert p.bytes_from_gpu == s.bytes_from_gpu


def test_serialized_batches_do_not_overlap():
    tl = make_pipeline_runtime(pipelined=False).execute(mixed_tasks(40))
    spans = sorted(
        (b.dispatched_at, b.completed_at) for b in tl.metrics.batches
    )
    for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
        assert next_start >= prev_end - 1e-12


def test_pipelined_batches_do_overlap():
    tl = make_pipeline_runtime(pipelined=True).execute(mixed_tasks(40))
    spans = sorted(
        (b.dispatched_at, b.completed_at) for b in tl.metrics.batches
    )
    assert any(
        next_start < prev_end
        for (_, prev_end), (next_start, _) in zip(spans, spans[1:])
    )


def test_gpu_and_pcie_overlap_in_trace():
    """Double buffering: a PCIe transfer runs while the GPU computes."""
    tracer = Tracer()
    rt = make_pipeline_runtime(pipelined=True)
    rt.tracer = tracer
    rt.execute(mixed_tasks(60))
    gpu = tracer.by_category("gpu")
    pcie = tracer.by_category("pcie")
    assert any(
        p.start < g.end and g.start < p.end and min(g.end, p.end) - max(g.start, p.start) > 0
        for g in gpu
        for p in pcie
    )


def test_normalized_busy_never_exceeds_makespan():
    tl = make_pipeline_runtime(pipelined=True).execute(mixed_tasks(60))
    assert tl.cpu_compute_busy <= tl.total_seconds + 1e-9
    assert tl.gpu_busy <= tl.total_seconds + 1e-9
    assert tl.pcie_to_busy <= tl.total_seconds + 1e-9
    assert tl.pcie_from_busy <= tl.total_seconds + 1e-9


def test_metrics_recorded_per_batch():
    tl = make_pipeline_runtime().execute(mixed_tasks(40))
    m = tl.metrics
    assert m.n_batches == tl.n_batches
    assert m.counters["items"] == 40
    assert m.counters["cpu_items"] == tl.n_cpu_items
    assert m.counters["gpu_items"] == tl.n_gpu_items
    for b in m.batches:
        assert b.completed_at >= b.dispatched_at
        assert b.n_cpu_items + b.n_gpu_items == b.n_items


def test_runtime_feeds_adaptive_dispatcher():
    """The node runtime closes the feedback loop: a miscalibrated GPU
    scale is pulled toward the measured ratio during the run."""
    rt = make_pipeline_runtime(adaptive=True, gpu_scale=2.0)
    rt.execute(make_tasks(200))
    assert rt.dispatcher.history, "runtime never called observe()"
    assert rt.dispatcher.gpu_time_scale < 2.0


def test_shared_dispatcher_not_mutated_by_execute():
    """Regression: execute() used to assign its transfer estimator onto
    the dispatcher, corrupting other runtimes sharing the instance."""
    rt = make_pipeline_runtime()
    before = rt.dispatcher.transfer_estimator
    rt.execute(make_tasks(30))
    assert rt.dispatcher.transfer_estimator is before


def test_invalid_admission_window_rejected():
    cpu = CpuMtxmKernel(CpuModel(TITAN_NODE.cpu))
    gpu = CustomGpuKernel(GpuModel(TITAN_NODE.gpu))
    dispatcher = HybridDispatcher(cpu, gpu, cpu_threads=4, gpu_streams=2)
    with pytest.raises(RuntimeConfigError):
        NodeRuntime(TITAN_NODE, dispatcher, max_inflight_batches=0)


def test_block_wait_seconds_accounted():
    """In-flight block waits surface on the timeline (never negative)."""
    tl = make_runtime("hybrid").execute(make_tasks(150))
    assert tl.block_wait_seconds >= 0.0
    assert tl.block_wait_seconds == pytest.approx(
        sum(b.block_wait_seconds for b in tl.metrics.batches)
    )
