"""Tests for pinned transfer buffers (paper Section II-A data batching)."""

import pytest

from repro.errors import RuntimeConfigError
from repro.hardware.specs import PcieSpec
from repro.runtime.buffers import PinnedBufferPool, naive_transfer_plan


@pytest.fixture()
def pcie() -> PcieSpec:
    return PcieSpec()


def test_pool_setup_cost_is_per_buffer(pcie):
    pool = PinnedBufferPool(pcie, n_buffers=4, buffer_bytes=1 << 20)
    assert pool.setup_cost_seconds == pytest.approx(4 * pcie.page_lock_seconds)
    assert pool.teardown_cost_seconds == pytest.approx(4 * pcie.page_unlock_seconds)


def test_plan_single_transfer(pcie):
    pool = PinnedBufferPool(pcie, n_buffers=2, buffer_bytes=1 << 20)
    plan = pool.plan(1 << 19)
    assert plan.n_transfers == 1
    assert plan.pinned
    # paid once at construction: exact zero, nothing accumulated
    assert plan.setup_seconds == 0.0  # repro: noqa[FLT001]
    assert plan.wire_seconds == pytest.approx(
        (1 << 19) / pcie.pinned_bytes_per_second
    )


def test_plan_splits_across_buffers(pcie):
    pool = PinnedBufferPool(pcie, buffer_bytes=1 << 20)
    plan = pool.plan(int(3.5 * (1 << 20)))
    assert plan.n_transfers == 4
    assert plan.latency_seconds == pytest.approx(4 * pcie.latency_seconds)


def test_zero_bytes_still_one_transfer(pcie):
    plan = PinnedBufferPool(pcie).plan(0)
    assert plan.n_transfers == 1
    assert plan.wire_seconds == 0.0  # repro: noqa[FLT001] - zero bytes, exact zero


def test_negative_bytes_rejected(pcie):
    with pytest.raises(RuntimeConfigError):
        PinnedBufferPool(pcie).plan(-1)


def test_invalid_pool_rejected(pcie):
    with pytest.raises(RuntimeConfigError):
        PinnedBufferPool(pcie, n_buffers=0)


def test_naive_pageable_slower_than_pool(pcie):
    """The paper's motivation: batched pinned transfers beat per-task
    pageable ones."""
    items = [64 << 10] * 100  # 100 tensors of 64 KB
    pool_time = PinnedBufferPool(pcie).plan(sum(items)).total_seconds
    naive = naive_transfer_plan(pcie, items, pin_each=False).total_seconds
    assert naive > 2.0 * pool_time


def test_naive_pin_each_is_catastrophic(pcie):
    """Per-task page-locking costs 2.5 ms per item — 'excessive'."""
    items = [64 << 10] * 100
    plan = naive_transfer_plan(pcie, items, pin_each=True)
    assert plan.setup_seconds == pytest.approx(
        100 * (pcie.page_lock_seconds + pcie.page_unlock_seconds)
    )
    batched = PinnedBufferPool(pcie).plan(sum(items)).total_seconds
    assert plan.total_seconds > 50 * batched


def test_paper_pinning_constants(pcie):
    assert pcie.page_lock_seconds == pytest.approx(0.5e-3)
    assert pcie.page_unlock_seconds == pytest.approx(2.0e-3)
    assert pcie.pinned_bytes_per_second >= 2 * pcie.pageable_bytes_per_second
