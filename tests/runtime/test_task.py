"""Tests for task dataclasses and batch statistics."""

import pytest

from repro.runtime.task import BatchStats, HybridTask, TaskKind, WorkItem


def test_kind_identity_and_hash():
    a = TaskKind("f", (3, 20))
    b = TaskKind("f", (3, 20))
    c = TaskKind("f", (3, 40))
    assert a == b and hash(a) == hash(b)
    assert a != c
    assert "f" in str(a)


def test_hybrid_task_preprocess_produces_item():
    item = WorkItem(kind=TaskKind("f", 0), flops=5)
    task = HybridTask(preprocess=lambda: item)
    assert task.run_preprocess() is item
    assert task.work is item


def test_hybrid_task_prepared_item_passthrough():
    item = WorkItem(kind=TaskKind("f", 0))
    task = HybridTask(work=item)
    assert task.run_preprocess() is item


def test_hybrid_task_without_work_rejected():
    with pytest.raises(ValueError):
        HybridTask().run_preprocess()


def _item(kind, flops, blocks, block_bytes=800):
    return WorkItem(
        kind=kind,
        flops=flops,
        input_bytes=100,
        output_bytes=50,
        block_keys=blocks,
        block_bytes=block_bytes,
        steps=3,
        step_rows=16,
        step_q=4,
    )


def test_batch_stats_aggregation():
    kind = TaskKind("f", 0)
    items = [
        _item(kind, 10, ("a", "b")),
        _item(kind, 20, ("b", "c")),
    ]
    stats = BatchStats.of(items)
    assert stats.n_items == 2
    assert stats.flops == 30
    assert stats.input_bytes == 200
    assert stats.output_bytes == 100
    assert stats.steps == 6
    assert stats.block_keys == {"a", "b", "c"}


def test_batch_stats_unique_block_bytes_dedups():
    kind = TaskKind("f", 0)
    # both items need the same two blocks of 400 bytes each
    items = [_item(kind, 1, ("x", "y")), _item(kind, 1, ("x", "y"))]
    stats = BatchStats.of(items)
    assert stats.unique_block_bytes == 800


def test_batch_stats_shapes_take_max():
    kind = TaskKind("f", 0)
    small = _item(kind, 1, ())
    big = WorkItem(kind=kind, flops=1, steps=1, step_rows=400, step_q=20)
    stats = BatchStats.of([small, big])
    assert stats.step_rows == 400
    assert stats.step_q == 20


def test_batch_stats_empty():
    stats = BatchStats.of([])
    assert stats.n_items == 0
    assert stats.flops == 0
