"""Property-based tests of the DES engine and the dispatcher split."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cpu_model import CpuModel
from repro.hardware.gpu_model import GpuModel
from repro.hardware.specs import TITAN_NODE
from repro.kernels.cpu_kernel import CpuMtxmKernel
from repro.kernels.custom_gpu import CustomGpuKernel
from repro.runtime.batching import Batch
from repro.runtime.dispatcher import HybridDispatcher
from repro.runtime.events import Environment, Resource
from repro.runtime.task import BatchStats, TaskKind, WorkItem


@given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=20), st.integers(1, 4))
@settings(max_examples=50, deadline=None)
def test_resource_conservation(durations, capacity):
    """Random jobs through a resource: all complete, makespan is bounded
    by the list-scheduling guarantees, and occupancy never exceeds
    capacity."""
    env = Environment()
    res = Resource(env, capacity)
    completed = []
    peak = [0]

    def job(d):
        req = res.request()
        yield req
        peak[0] = max(peak[0], res.in_use)
        yield env.timeout(d)
        res.release()
        completed.append(d)

    for d in durations:
        env.process(job(d))
    env.run()
    assert len(completed) == len(durations)
    assert peak[0] <= capacity
    total = sum(durations)
    longest = max(durations)
    # list scheduling bounds: work/capacity <= makespan <= work + longest
    assert env.now <= total + 1e-9
    assert env.now >= max(longest, total / capacity) - 1e-9


@given(st.lists(st.floats(0.1, 5.0), min_size=1, max_size=15))
@settings(max_examples=50, deadline=None)
def test_parallel_timeouts_end_at_max(durations):
    env = Environment()

    def waiter(d):
        yield env.timeout(d)

    for d in durations:
        env.process(waiter(d))
    env.run()
    assert np.isclose(env.now, max(durations))


def _item(flops: int) -> WorkItem:
    return WorkItem(
        kind=TaskKind("t", 0),
        flops=flops,
        steps=30,
        step_rows=400,
        step_q=20,
        input_bytes=64_000,
        output_bytes=64_000,
    )


@given(
    st.lists(st.integers(1_000_000, 200_000_000), min_size=1, max_size=40),
    st.integers(1, 16),
    st.integers(1, 6),
)
@settings(max_examples=40, deadline=None)
def test_dispatcher_cut_is_optimal(flops_list, threads, streams):
    """The bisection cut matches brute-force minimisation of
    max(cpu(prefix), gpu(suffix)) over all cuts."""
    disp = HybridDispatcher(
        CpuMtxmKernel(CpuModel(TITAN_NODE.cpu)),
        CustomGpuKernel(GpuModel(TITAN_NODE.gpu)),
        cpu_threads=threads,
        gpu_streams=streams,
        mode="hybrid",
    )
    items = [_item(f) for f in flops_list]
    batch = Batch(kind=items[0].kind, items=items, created_at=0.0, flushed_at=0.0)
    plan = disp.plan(batch)
    achieved = max(
        disp._cpu_seconds(plan.cpu_items), disp._gpu_seconds(plan.gpu_items)
    )
    best = min(
        max(disp._cpu_seconds(items[:cut]), disp._gpu_seconds(items[cut:]))
        for cut in range(len(items) + 1)
    )
    assert achieved <= best * (1.0 + 1e-9)


@given(st.integers(1, 200), st.integers(1, 64))
@settings(max_examples=40, deadline=None)
def test_dispatcher_plan_partitions_items(n_items, _seed):
    disp = HybridDispatcher(
        CpuMtxmKernel(CpuModel(TITAN_NODE.cpu)),
        CustomGpuKernel(GpuModel(TITAN_NODE.gpu)),
        cpu_threads=10,
        gpu_streams=5,
        mode="hybrid",
    )
    items = [_item(50_000_000) for _ in range(n_items)]
    batch = Batch(kind=items[0].kind, items=items, created_at=0.0, flushed_at=0.0)
    plan = disp.plan(batch)
    assert len(plan.cpu_items) + len(plan.gpu_items) == n_items
    assert 0.0 <= plan.cpu_fraction <= 1.0


@given(st.integers(1, 60))
@settings(max_examples=30, deadline=None)
def test_batch_stats_additive(n):
    items = [_item(1000 * (i + 1)) for i in range(n)]
    whole = BatchStats.of(items)
    first = BatchStats.of(items[: n // 2])
    second = BatchStats.of(items[n // 2 :])
    assert whole.flops == first.flops + second.flops
    assert whole.n_items == first.n_items + second.n_items
    assert whole.steps == first.steps + second.steps
