"""Tests for the naive CPU-GPU port baseline (paper Section I strawman)."""

import pytest

from repro.hardware.cpu_model import CpuModel
from repro.hardware.gpu_model import GpuModel
from repro.hardware.specs import TITAN_NODE
from repro.kernels.custom_gpu import CustomGpuKernel
from repro.kernels.cpu_kernel import CpuMtxmKernel
from repro.runtime.dispatcher import HybridDispatcher
from repro.runtime.node import NodeRuntime
from tests.runtime.test_node_runtime import make_tasks


def _runtime(naive: bool) -> NodeRuntime:
    dispatcher = HybridDispatcher(
        CpuMtxmKernel(CpuModel(TITAN_NODE.cpu)),
        CustomGpuKernel(GpuModel(TITAN_NODE.gpu)),
        cpu_threads=12,
        gpu_streams=5,
        mode="gpu",
    )
    return NodeRuntime(
        TITAN_NODE, dispatcher, flush_interval=0.005, max_batch_size=60,
        naive_port=naive,
    )


def test_naive_port_forces_unit_batches():
    rt = _runtime(naive=True)
    tl = rt.execute(make_tasks(50))
    assert tl.n_batches == 50


def test_naive_port_reships_blocks_every_task():
    naive = _runtime(naive=True).execute(make_tasks(50))
    batched = _runtime(naive=False).execute(make_tasks(50))
    # only 5 distinct block families exist: the write-once cache ships
    # them once, the naive port ships them with every task
    assert naive.block_bytes_shipped > 5 * batched.block_bytes_shipped


def test_naive_port_is_much_slower():
    """The paper's premise: the naive port 'would result in low GPU
    occupancy and high CPU-GPU transfer latency'."""
    naive = _runtime(naive=True).execute(make_tasks(100)).total_seconds
    batched = _runtime(naive=False).execute(make_tasks(100)).total_seconds
    assert naive > 2.0 * batched


def test_naive_port_skips_pool_setup():
    tl = _runtime(naive=True).execute(make_tasks(10))
    assert tl.setup_seconds == 0.0  # repro: noqa[FLT001] - no pool, exact zero


def test_naive_port_same_task_accounting():
    tl = _runtime(naive=True).execute(make_tasks(30))
    assert tl.n_tasks == 30
    assert tl.n_gpu_items == 30
