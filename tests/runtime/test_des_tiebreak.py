"""Same-instant tie-breaking is deterministic and engine-independent.

Two layers pin the contract: at the kernel, events scheduled at one
float instant pop in scheduling order (or in the seeded adversarial
order under :func:`scheduling_perturbation`) identically on both
engines; at the dump, same-instant records canonicalize in
``_OP_STAGE`` order — the ``(at, stage, batch, attempt)`` key the
calendar queue must preserve through its bucket boundaries.
"""

import random

import pytest

from repro.obs.dump import _OP_STAGE
from repro.obs.scenarios import run_scenario
from repro.runtime.events import (
    Environment,
    des_engine,
    scheduling_perturbation,
)

_SAME_INSTANTS = [0.0, 1.0, 0.5883029443769618, 1e-9, 1e6]


def _completion_order(engine, instant, n=8, seed=None):
    """Spawn ``n`` processes all finishing at ``instant``; return the
    order their completions land in."""
    with des_engine(engine):
        if seed is None:
            env = Environment()
        else:
            with scheduling_perturbation(random.Random(seed)):
                env = Environment()
        order = []

        def worker(name):
            yield env.timeout(instant)
            order.append(name)

        for name in range(n):
            env.process(worker(name))
        env.run()
        return order


@pytest.mark.parametrize("instant", _SAME_INSTANTS)
def test_same_instant_pops_in_scheduling_order(instant):
    """Without perturbation, same-instant ties resolve to spawn order
    on both engines — the calendar queue keeps every tie in one bucket
    so the ``(time, draw, seq)`` comparison is never split."""
    for engine in ("heap", "calendar"):
        assert _completion_order(engine, instant) == list(range(8)), engine


@pytest.mark.parametrize("seed", [0, 1, 7, 1234])
@pytest.mark.parametrize("instant", _SAME_INSTANTS)
def test_perturbed_ties_identical_across_engines(instant, seed):
    """Seeded adversarial tie-breaks reorder the instant the same way
    on both engines (the draw rides inside the queue key)."""
    heap = _completion_order("heap", instant, seed=seed)
    calendar = _completion_order("calendar", instant, seed=seed)
    assert heap == calendar
    assert sorted(heap) == list(range(8))


@pytest.mark.parametrize("engine", ["heap", "calendar"])
def test_dump_same_instant_records_in_op_stage_order(engine):
    """Canonical dumps list same-instant records in ``_OP_STAGE``
    order on either engine (the stealing scenario exercises every
    steal-protocol op)."""
    dump = run_scenario("stealing", engine=engine).dump
    checked = 0
    for rank in dump.ranks:
        log = rank.log
        for prev, rec in zip(log, log[1:]):
            if prev.at == rec.at:  # repro: noqa[FLT001] - grouping identical instants, not comparing computed times
                checked += 1
                assert (
                    _OP_STAGE.get(prev.op, 99),
                    prev.batch,
                    prev.attempt,
                ) <= (
                    _OP_STAGE.get(rec.op, 99),
                    rec.batch,
                    rec.attempt,
                )
    assert checked > 0, "scenario produced no same-instant record pairs"
