"""Tests for the fixed-ratio dispatcher (the paper's deployment mode)."""

import pytest

from repro.errors import RuntimeConfigError
from repro.hardware.cpu_model import CpuModel
from repro.hardware.gpu_model import GpuModel
from repro.hardware.specs import TITAN_NODE
from repro.kernels.cpu_kernel import CpuMtxmKernel
from repro.kernels.custom_gpu import CustomGpuKernel
from repro.runtime.batching import Batch
from repro.runtime.dispatcher import HybridDispatcher, StaticSplitDispatcher
from repro.runtime.node import NodeRuntime
from tests.runtime.test_node_runtime import make_tasks
from tests.runtime.test_dispatcher import _batch


def _static(fraction: float) -> StaticSplitDispatcher:
    return StaticSplitDispatcher(
        CpuMtxmKernel(CpuModel(TITAN_NODE.cpu)),
        CustomGpuKernel(GpuModel(TITAN_NODE.gpu)),
        cpu_fraction=fraction,
        cpu_threads=10,
        gpu_streams=5,
    )


def test_fraction_respected():
    plan = _static(0.25).plan(_batch(n_items=100))
    total = sum(it.flops for it in plan.cpu_items + plan.gpu_items)
    cpu_share = sum(it.flops for it in plan.cpu_items) / total
    assert cpu_share == pytest.approx(0.25, abs=0.02)
    assert plan.cpu_fraction == 0.25  # repro: noqa[FLT001] - static split stored verbatim


def test_extremes():
    all_gpu = _static(0.0).plan(_batch())
    assert not all_gpu.cpu_items
    all_cpu = _static(1.0).plan(_batch())
    assert not all_cpu.gpu_items


def test_invalid_fraction():
    with pytest.raises(RuntimeConfigError):
        _static(1.5)
    with pytest.raises(RuntimeConfigError):
        _static(-0.1)


def test_well_chosen_static_ratio_close_to_measuring_dispatcher():
    """The paper set the ratio from known relative performance; with the
    right value the static split should be nearly as good as the
    measuring dispatcher."""
    measuring = HybridDispatcher(
        CpuMtxmKernel(CpuModel(TITAN_NODE.cpu)),
        CustomGpuKernel(GpuModel(TITAN_NODE.gpu)),
        cpu_threads=10,
        gpu_streams=5,
        mode="hybrid",
    )
    rt = NodeRuntime(TITAN_NODE, measuring, flush_interval=0.005)
    t_measuring = rt.execute(make_tasks(300)).total_seconds
    k = rt.execute(make_tasks(300)).cpu_fraction_sent  # learn the good ratio
    rt_static = NodeRuntime(
        TITAN_NODE, _static(k), flush_interval=0.005
    )
    t_static = rt_static.execute(make_tasks(300)).total_seconds
    assert t_static < 1.25 * t_measuring


def test_bad_static_ratio_hurts():
    """Misjudging the ratio costs real time — why the measuring
    dispatcher exists."""
    rt_good = NodeRuntime(TITAN_NODE, _static(0.6), flush_interval=0.005)
    rt_bad = NodeRuntime(TITAN_NODE, _static(0.95), flush_interval=0.005)
    t_good = rt_good.execute(make_tasks(300)).total_seconds
    t_bad = rt_bad.execute(make_tasks(300)).total_seconds
    assert t_bad > 1.4 * t_good
