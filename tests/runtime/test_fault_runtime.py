"""The node runtime under deterministic fault injection.

Covers the resilience contract end to end on a single node: the
zero-overhead happy path, transient-fault retries, CPU fallback after
budget exhaustion, the degraded-mode flip and recovery, watchdog
re-planning, and the trace-checked exactly-once invariant.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.models import GpuFailure, PcieDegradation, StragglerNode
from repro.faults.policies import (
    DegradedModeController,
    GpuBatchTimeout,
    RetryPolicy,
)
from repro.lint.trace_check import verify_tracer
from repro.runtime.trace import Tracer
from tests.conftest import make_runtime
from tests.runtime.test_node_runtime import make_tasks

N = 240


def run(mode="hybrid", n=N, **kwargs):
    return make_runtime(mode, **kwargs).execute(make_tasks(n))


class TestZeroOverhead:
    def test_empty_injector_timeline_is_identical(self):
        clean = run()
        armed = run(fault_injector=FaultInjector(seed=123))
        # bit-identical, field by field (metrics records included)
        assert dataclasses.asdict(clean) == dataclasses.asdict(armed)

    def test_empty_injector_cpu_and_gpu_modes(self):
        for mode in ("cpu", "gpu"):
            clean = run(mode)
            armed = run(mode, fault_injector=FaultInjector())
            # armed-but-idle contract: bit-identity IS the claim
            assert clean.total_seconds == armed.total_seconds  # repro: noqa[FLT001]

    def test_clean_run_reports_zero_fault_counters(self):
        tl = run(fault_injector=FaultInjector())
        assert tl.n_gpu_faults == 0
        assert tl.n_retries == 0
        assert tl.n_fallback_items == 0
        assert tl.retry_wait_seconds == 0.0  # repro: noqa[FLT001] - never incremented, exact zero


class TestTransientFaults:
    def test_retries_complete_all_work(self):
        inj = FaultInjector(seed=5, faults=[GpuFailure(rate=0.3)])
        tl = run(fault_injector=inj, retry_policy=RetryPolicy(max_attempts=4))
        assert tl.n_tasks == N
        assert tl.n_cpu_items + tl.n_gpu_items == N
        assert tl.n_gpu_faults > 0
        assert tl.n_retries > 0

    def test_faults_cost_time(self):
        clean = run().total_seconds
        inj = FaultInjector(seed=5, faults=[GpuFailure(rate=0.3)])
        faulted = run(
            fault_injector=inj, retry_policy=RetryPolicy(max_attempts=4)
        ).total_seconds
        assert faulted > clean

    def test_fault_schedule_is_reproducible(self):
        def once():
            inj = FaultInjector(seed=5, faults=[GpuFailure(rate=0.3)])
            return run(
                fault_injector=inj, retry_policy=RetryPolicy(max_attempts=4)
            )
        a, b = once(), once()
        # determinism: repeat runs must agree bit for bit
        assert a.total_seconds == b.total_seconds  # repro: noqa[FLT001]
        assert a.n_gpu_faults == b.n_gpu_faults

    def test_counters_match_metrics(self):
        inj = FaultInjector(seed=5, faults=[GpuFailure(rate=0.3)])
        tl = run(fault_injector=inj, retry_policy=RetryPolicy(max_attempts=4))
        assert tl.metrics.counters["gpu_faults"] == tl.n_gpu_faults
        assert tl.metrics.counters["retries"] == tl.n_retries
        assert tl.metrics.total_retry_wait_seconds() == pytest.approx(
            tl.retry_wait_seconds
        )


class TestFallback:
    def test_permanent_failure_falls_back_to_cpu(self):
        inj = FaultInjector(faults=[GpuFailure(permanent=True)])
        tl = run(fault_injector=inj, retry_policy=RetryPolicy(max_attempts=2))
        assert tl.n_tasks == N
        assert tl.n_gpu_items == 0  # every GPU share replayed on the CPU
        assert tl.n_cpu_items == N
        assert tl.n_fallback_items > 0
        assert tl.n_gpu_faults > 0

    def test_fallback_run_is_slower_than_clean(self):
        inj = FaultInjector(faults=[GpuFailure(permanent=True)])
        tl = run(fault_injector=inj, retry_policy=RetryPolicy(max_attempts=2))
        assert tl.total_seconds > run().total_seconds


class TestDegradedMode:
    def test_permanent_failure_degrades_node(self):
        inj = FaultInjector(faults=[GpuFailure(permanent=True)])
        ctl = DegradedModeController(fault_threshold=1, probe_interval=None)
        tl = run(
            fault_injector=inj,
            retry_policy=RetryPolicy(max_attempts=1),
            degraded_mode=ctl,
        )
        assert ctl.degradations == 1
        assert tl.degraded_seconds > 0.0
        assert tl.n_tasks == N
        assert tl.n_gpu_items == 0

    def test_windowed_failure_recovers_via_probe(self):
        clean_span = run().total_seconds
        inj = FaultInjector(
            faults=[GpuFailure(permanent=True, end=clean_span * 0.3)]
        )
        ctl = DegradedModeController(
            fault_threshold=1, probe_interval=clean_span * 0.05
        )
        tl = run(
            fault_injector=inj,
            retry_policy=RetryPolicy(max_attempts=1),
            degraded_mode=ctl,
        )
        assert ctl.degradations >= 1
        assert ctl.recoveries >= 1  # the GPU healed and a probe caught it
        assert tl.n_gpu_items > 0  # hybrid dispatch resumed
        assert tl.n_tasks == N


class TestWatchdog:
    def test_oversized_batches_replan_cpu_side(self):
        # injector active (fault on a rank this node never is) but the
        # tiny watchdog re-plans every GPU share before dispatch
        inj = FaultInjector(faults=[GpuFailure(rank=99, permanent=True)])
        tl = run(
            fault_injector=inj,
            gpu_timeout=GpuBatchTimeout(timeout_seconds=1e-9),
        )
        assert tl.n_gpu_items == 0
        assert tl.n_fallback_items > 0
        assert tl.n_gpu_faults == 0  # re-planned, never dispatched
        assert tl.n_tasks == N

    def test_timeout_caps_faulted_attempt_cost(self):
        inj = FaultInjector(faults=[GpuFailure(permanent=True)])
        slow = run(
            fault_injector=inj, retry_policy=RetryPolicy(max_attempts=3)
        ).total_seconds
        inj2 = FaultInjector(faults=[GpuFailure(permanent=True)])
        capped = run(
            fault_injector=inj2,
            retry_policy=RetryPolicy(max_attempts=3),
            gpu_timeout=GpuBatchTimeout(timeout_seconds=10.0),
        ).total_seconds
        # a generous watchdog that never triggers re-planning still
        # cannot make things slower than uncapped stalls
        assert capped <= slow


class TestDegradations:
    def test_pcie_degradation_slows_transfers(self):
        clean = run("gpu")
        inj = FaultInjector(faults=[PcieDegradation(bandwidth_factor=0.25)])
        degraded = run("gpu", fault_injector=inj)
        assert degraded.total_seconds > clean.total_seconds

    def test_straggler_slows_compute(self):
        clean = run("cpu")
        inj = FaultInjector(faults=[StragglerNode(slowdown=2.0)])
        slow = run("cpu", fault_injector=inj)
        assert slow.total_seconds > 1.5 * clean.total_seconds


class TestTracedChaos:
    def test_trace_contract_holds_under_faults(self):
        tracer = Tracer()
        rt = make_runtime(
            "hybrid",
            fault_injector=FaultInjector(seed=5, faults=[GpuFailure(rate=0.3)]),
            retry_policy=RetryPolicy(max_attempts=4),
            tracer=tracer,
        )
        rt.execute(make_tasks(N))
        assert any(r.op == "gpu_fault" for r in tracer.log)
        assert any(
            r.op == "gpu_compute" and r.attempt > 0 for r in tracer.log
        )
        verify_tracer(tracer)

    def test_every_item_accumulated_once_under_fallback(self):
        tracer = Tracer()
        rt = make_runtime(
            "hybrid",
            fault_injector=FaultInjector(
                faults=[GpuFailure(permanent=True)]
            ),
            retry_policy=RetryPolicy(max_attempts=2),
            tracer=tracer,
        )
        rt.execute(make_tasks(N))
        verify_tracer(tracer)
        accumulated = [
            i for r in tracer.log if r.op == "accumulate" for i in r.ids
        ]
        assert len(accumulated) == N
        assert len(set(accumulated)) == N
