"""Stress and composition tests of the DES engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.events import AllOf, Environment, Resource


def test_nested_process_chain():
    """A chain of processes each awaiting the next: values propagate and
    the clock accumulates."""
    env = Environment()

    def worker(depth):
        yield env.timeout(1.0)
        if depth == 0:
            return 0
        below = yield env.process(worker(depth - 1))
        return below + 1

    result = []

    def root():
        value = yield env.process(worker(10))
        result.append((env.now, value))

    env.process(root())
    env.run()
    assert result == [(11.0, 10)]


def test_fan_out_fan_in():
    env = Environment()
    done = []

    def leaf(d):
        yield env.timeout(d)
        return d

    def root():
        procs = [env.process(leaf(d)) for d in (3.0, 1.0, 2.0)]
        yield AllOf(env, procs)
        done.append(env.now)

    env.process(root())
    env.run()
    assert done == [3.0]


def test_resource_pipeline_two_stages():
    """Two serial resources form a pipeline: throughput limited by the
    slower stage."""
    env = Environment()
    stage_a = Resource(env, 1)
    stage_b = Resource(env, 1)
    finished = []

    def job(i):
        req = stage_a.request()
        yield req
        yield env.timeout(1.0)
        stage_a.release()
        req = stage_b.request()
        yield req
        yield env.timeout(2.0)
        stage_b.release()
        finished.append((i, env.now))

    for i in range(4):
        env.process(job(i))
    env.run()
    # stage b is the bottleneck: completions at 3, 5, 7, 9
    assert [t for _i, t in finished] == [3.0, 5.0, 7.0, 9.0]


@given(st.lists(st.floats(0.01, 10.0), min_size=1, max_size=30),
       st.integers(1, 4), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_two_stage_pipeline_conservation(durations, cap_a, cap_b):
    """Random two-stage pipelines: every job completes exactly once and
    the makespan is at least the critical-path lower bound."""
    env = Environment()
    a = Resource(env, cap_a)
    b = Resource(env, cap_b)
    done = []

    def job(d):
        req = a.request()
        yield req
        yield env.timeout(d)
        a.release()
        req = b.request()
        yield req
        yield env.timeout(d / 2)
        b.release()
        done.append(d)

    for d in durations:
        env.process(job(d))
    env.run()
    assert sorted(done) == sorted(durations)
    lower = max(
        max(d * 1.5 for d in durations),
        sum(durations) / cap_a,
        sum(d / 2 for d in durations) / cap_b,
    )
    assert env.now >= lower - 1e-9


def test_large_event_count():
    """The engine handles tens of thousands of events comfortably."""
    env = Environment()
    counter = [0]

    def ticker():
        for _ in range(10_000):
            yield env.timeout(0.001)
            counter[0] += 1

    env.process(ticker())
    env.process(ticker())
    env.run()
    assert counter[0] == 20_000
    assert np.isclose(env.now, 10.0)
