"""End-to-end tests of the single-node hybrid runtime (simulated time)."""

import pytest

from repro.hardware.specs import TITAN_NODE
from repro.runtime.task import HybridTask, TaskKind, WorkItem
from tests.conftest import make_runtime


def make_tasks(n, *, flops=20_000_000, q=20, dim=3, rank=50):
    kind = TaskKind("integral_compute", (dim, q))
    steps = rank * dim
    rows = q ** (dim - 1)
    tasks = []
    for i in range(n):
        item = WorkItem(
            kind=kind,
            flops=flops,
            input_bytes=q**dim * 8,
            output_bytes=q**dim * 8,
            block_keys=tuple((i % 5, mu) for mu in range(rank)),
            block_bytes=rank * q * q * 8,
            steps=steps,
            step_rows=rows,
            step_q=q,
        )
        tasks.append(HybridTask(work=item, pre_bytes=item.input_bytes,
                                post_bytes=item.output_bytes))
    return tasks


def test_all_tasks_processed():
    rt = make_runtime("hybrid")
    tl = rt.execute(make_tasks(200))
    assert tl.n_tasks == 200
    assert tl.n_cpu_items + tl.n_gpu_items == 200


def test_gpu_mode_routes_everything_to_gpu():
    tl = make_runtime("gpu").execute(make_tasks(100))
    assert tl.n_gpu_items == 100
    assert tl.n_cpu_items == 0
    assert tl.gpu_busy > 0
    assert tl.bytes_to_gpu > 0


def test_cpu_mode_uses_no_gpu():
    tl = make_runtime("cpu").execute(make_tasks(100))
    assert tl.n_gpu_items == 0
    assert tl.gpu_busy == 0.0  # repro: noqa[FLT001] - gpu never ran, exact zero
    assert tl.pcie_busy == 0.0  # repro: noqa[FLT001] - gpu never ran, exact zero


def test_hybrid_not_slower_than_pure_modes():
    tasks = make_tasks(300)
    times = {
        mode: make_runtime(mode).execute(make_tasks(300)).total_seconds
        for mode in ("cpu", "gpu", "hybrid")
    }
    assert times["hybrid"] <= 1.1 * min(times["cpu"], times["gpu"])
    del tasks


def test_more_streams_help_custom_kernel():
    t1 = make_runtime("gpu", gpu_streams=1).execute(make_tasks(300)).total_seconds
    t5 = make_runtime("gpu", gpu_streams=5).execute(make_tasks(300)).total_seconds
    assert t5 < t1
    # Table I: about 2.9x from 1 to 5 streams
    assert 2.0 < t1 / t5 < 3.8


def test_more_threads_help_cpu():
    t1 = make_runtime("cpu", cpu_threads=1).execute(make_tasks(200)).total_seconds
    t16 = make_runtime("cpu", cpu_threads=16).execute(make_tasks(200)).total_seconds
    # Table I: ~6.7x from 1 to 16 threads (FPU/module contention)
    assert 5.5 < t1 / t16 < 8.0


def test_batch_cap_respected():
    rt = make_runtime("hybrid", max_batch_size=25)
    tl = rt.execute(make_tasks(100))
    assert tl.n_batches >= 4


def test_setup_cost_charged_once():
    rt = make_runtime("cpu")
    tl = rt.execute(make_tasks(10))
    assert tl.setup_seconds == pytest.approx(rt.buffer_pool.setup_cost_seconds)
    assert tl.total_seconds > tl.setup_seconds


def test_empty_task_list():
    tl = make_runtime("hybrid").execute([])
    assert tl.n_tasks == 0
    assert tl.n_batches == 0


def test_estimates_accumulated_per_batch():
    tl = make_runtime("hybrid").execute(make_tasks(100))
    assert tl.est_cpu_only > 0
    assert tl.est_gpu_only > 0


def test_busy_never_exceeds_makespan():
    tl = make_runtime("hybrid").execute(make_tasks(200))
    assert tl.gpu_busy <= tl.total_seconds + 1e-9
    assert tl.cpu_compute_busy <= tl.total_seconds + 1e-9
    assert tl.pcie_busy <= tl.total_seconds + 1e-9


def test_block_cache_limits_shipped_bytes():
    """Only 5 distinct block families exist, so shipped block bytes are
    far below the naive per-task total."""
    tl = make_runtime("gpu").execute(make_tasks(100))
    naive_total = 100 * 50 * 20 * 20 * 8
    assert tl.block_bytes_shipped < naive_total / 2
