"""Differential harness: the heap and calendar DES cores are equivalent.

Every canonical scenario and a fleet of hypothesis-generated random
event programs run on both engines; the canonical dumps must be
byte-identical, the trace-check / race-detector verdicts identical,
and completion orders / final clocks exact.  This suite is the gate
any future core change must clear (see docs/DES.md).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.races import detect_races
from repro.lint.trace_check import find_violations
from repro.obs.export import export_chrome
from repro.obs.scenarios import SCENARIOS, run_scenario
from repro.runtime.events import AllOf, Environment, des_engine

# -- canonical scenarios ---------------------------------------------------------


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_dumps_byte_identical(name):
    """The canonical dump is byte-for-byte engine-independent."""
    heap = run_scenario(name, engine="heap")
    calendar = run_scenario(name, engine="calendar")
    assert heap.dump.dumps() == calendar.dump.dumps()
    assert heap.makespan == calendar.makespan  # repro: noqa[FLT001] - bit-identity is the contract under test
    assert export_chrome(heap.dump) == export_chrome(calendar.dump)


@pytest.mark.parametrize("name", ["stealing", "chaos-sched", "faulty"])
def test_scenario_verdicts_identical(name):
    """trace_check and the race detector agree across engines."""
    heap = run_scenario(name, engine="heap").dump
    calendar = run_scenario(name, engine="calendar").dump
    for rank_h, rank_c in zip(heap.ranks, calendar.ranks):
        assert find_violations(rank_h.log) == find_violations(rank_c.log)
    report_h = detect_races(heap)
    report_c = detect_races(calendar)
    assert report_h.clean == report_c.clean
    assert report_h.to_dict() == report_c.to_dict()


# -- random event programs -------------------------------------------------------
#
# A program is a list of process specs; a spec is a list of actions the
# interpreter below replays identically on each engine.  Delays are
# drawn from a small grid so same-instant ties (the hard case for the
# calendar queue's bucket boundaries) occur constantly.

_DELAYS = st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 3.75])


def _actions(depth: int):
    options = [
        st.tuples(st.just("timeout"), _DELAYS),
        st.just(("pause",)),
        st.tuples(
            st.just("allof"),
            st.lists(_DELAYS, min_size=1, max_size=3),
        ),
    ]
    if depth > 0:
        child = st.lists(_actions(depth - 1), min_size=1, max_size=3)
        options.append(st.tuples(st.just("spawn"), child))
        options.append(st.tuples(st.just("wait"), child))
    return st.one_of(options)


_PROGRAMS = st.lists(
    st.lists(_actions(2), min_size=1, max_size=4), min_size=1, max_size=4
)


def _run_program(program, engine):
    """Interpret one program; returns (completion log, final clock)."""
    with des_engine(engine):
        env = Environment()
        log = []

        def exec_spec(spec, path):
            for index, action in enumerate(spec):
                kind = action[0]
                if kind == "timeout":
                    yield env.timeout(action[1])
                elif kind == "pause":
                    yield None
                elif kind == "allof":
                    yield AllOf(
                        env, [env.timeout(d) for d in action[1]]
                    )
                elif kind == "spawn":
                    env.process(exec_spec(action[1], path + (index,)))
                elif kind == "wait":
                    yield env.process(
                        exec_spec(action[1], path + (index,))
                    )
            log.append((env.now, path))

        for slot, spec in enumerate(program):
            env.process(exec_spec(spec, (slot,)))
        final = env.run()
        return log, final, env.n_processed


@given(_PROGRAMS)
@settings(max_examples=250, deadline=None)
def test_random_programs_equivalent(program):
    """Arbitrary interleaved timeout/AllOf/spawn programs complete in
    the same order at the same instants on both engines."""
    log_h, final_h, n_h = _run_program(program, "heap")
    log_c, final_c, n_c = _run_program(program, "calendar")
    assert log_h == log_c  # repro: noqa[FLT001] - bit-identity is the contract under test
    assert final_h == final_c  # repro: noqa[FLT001] - bit-identity is the contract under test
    assert n_h == n_c
