"""EventPool safety: exhaustion, reuse, and stale-state scrubbing."""

import pytest

from repro.errors import SimulationError
from repro.runtime.events import (
    Environment,
    EventPool,
    _Resume,
    des_engine,
)


def test_negative_max_size_rejected():
    with pytest.raises(SimulationError):
        EventPool(_Resume, max_size=-1)


def test_acquire_allocates_then_recycles():
    env = Environment()
    pool = EventPool(_Resume, max_size=4)
    first = pool.acquire(env, None, "a")
    assert pool.n_allocated == 1
    assert pool.n_recycled == 0
    pool.release(first)
    assert len(pool) == 1
    second = pool.acquire(env, None, "b")
    assert second is first
    assert pool.n_recycled == 1
    assert len(pool) == 0


def test_release_beyond_max_size_drops_on_floor():
    env = Environment()
    pool = EventPool(_Resume, max_size=2)
    events = [pool.acquire(env, None, i) for i in range(5)]
    assert pool.n_allocated == 5
    for ev in events:
        pool.release(ev)
    # only max_size slots banked; the rest were dropped
    assert len(pool) == 2


def test_recycled_event_never_delivers_stale_state():
    """A recycled continuation carries no callback, value, or target
    from its previous life."""
    env = Environment()
    pool = EventPool(_Resume, max_size=4)
    ev = pool.acquire(env, "old-process", "old-value")
    fired = []
    ev.callbacks.append(lambda value: fired.append(value))
    ev.value = "stale-payload"
    pool.release(ev)
    assert ev.callbacks == []
    assert ev.value is None
    assert ev._process is None
    assert ev._value is None
    assert ev.triggered is False
    recycled = pool.acquire(env, "new-process", "new-value")
    assert recycled is ev
    assert recycled.callbacks == []
    assert recycled._process == "new-process"
    assert recycled._value == "new-value"
    assert recycled.triggered is True
    assert fired == [], "stale callback survived the scrub"


def test_zero_capacity_pool_always_allocates():
    env = Environment()
    pool = EventPool(_Resume, max_size=0)
    ev = pool.acquire(env, None, None)
    pool.release(ev)
    assert len(pool) == 0
    again = pool.acquire(env, None, None)
    assert again is not ev
    assert pool.n_allocated == 2
    assert pool.n_recycled == 0


def test_calendar_engine_recycles_through_runs():
    """An end-to-end run on the fast core actually reuses continuations
    and still produces the right timeline."""
    with des_engine("calendar"):
        env = Environment()
    assert env._resume_pool is not None
    log = []

    def worker(name, hops):
        for _ in range(hops):
            yield env.timeout(1.0)
            yield None  # a cooperative pause — pooled continuation
        log.append((env.now, name))

    for name in range(4):
        env.process(worker(name, hops=10))
    env.run()
    assert log == [(10.0, 0), (10.0, 1), (10.0, 2), (10.0, 3)]  # repro: noqa[FLT001] - integral hop count, exact
    assert env._resume_pool.n_recycled > 0
    # the pool stays bounded no matter how many steps ran
    assert len(env._resume_pool) <= env._resume_pool.max_size


def test_heap_engine_runs_without_pool():
    """The legacy core is preserved end to end: no pooling at all."""
    with des_engine("heap"):
        env = Environment()
    assert env._resume_pool is None

    def worker():
        yield env.timeout(1.0)
        yield None

    env.process(worker())
    env.run()
    assert env.now == 1.0  # repro: noqa[FLT001] - one hop from t=0, exact
