"""Additional batching accumulator edge cases."""

from repro.runtime.batching import BatchAccumulator
from repro.runtime.task import TaskKind, WorkItem


def item(kind_name: str, idx: int = 0) -> WorkItem:
    return WorkItem(kind=TaskKind(kind_name, 0), flops=idx)


def test_selective_flush_leaves_other_kinds_pending():
    acc = BatchAccumulator(flush_interval=1.0)
    acc.submit(item("a"), now=0.0)
    acc.submit(item("b"), now=0.0)
    (batch,) = acc.flush(now=0.5, kinds=[TaskKind("a", 0)])
    assert batch.kind.compute_name == "a"
    assert acc.pending == 1
    assert acc.pending_kinds() == [TaskKind("b", 0)]


def test_flush_unknown_kind_is_noop():
    acc = BatchAccumulator(flush_interval=1.0)
    acc.submit(item("a"), now=0.0)
    batches = acc.flush(now=0.5, kinds=[TaskKind("zzz", 0)])
    assert batches == []
    assert acc.pending == 1


def test_reopened_kind_gets_fresh_timer():
    acc = BatchAccumulator(flush_interval=1.0)
    acc.submit(item("a"), now=0.0)
    acc.flush(now=0.2)
    acc.submit(item("a"), now=5.0)
    # one addition of exact inputs (5.0 + 1.0) is exact in IEEE-754
    assert acc.next_deadline() == 6.0  # repro: noqa[FLT001]


def test_exact_cap_flushes_once():
    acc = BatchAccumulator(flush_interval=100.0, max_batch_size=2)
    assert acc.submit(item("a", 0), now=0.0) is None
    eager = acc.submit(item("a", 1), now=0.0)
    assert eager is not None and eager.size == 2
    assert acc.pending == 0


def test_stats_of_empty_flush():
    acc = BatchAccumulator(flush_interval=1.0)
    assert acc.flush(now=1.0) == []
    assert acc.next_deadline() is None
