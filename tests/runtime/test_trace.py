"""Tests for execution tracing and the text Gantt renderer."""

import pytest

from repro.errors import SimulationError
from repro.runtime.trace import Tracer, TraceEvent, render_text_gantt
from tests.conftest import make_runtime
from tests.runtime.test_node_runtime import make_tasks


def test_event_validation():
    with pytest.raises(SimulationError):
        TraceEvent("cpu", "x", 2.0, 1.0)


def test_tracer_accounting():
    t = Tracer()
    t.record("cpu", "a", 0.0, 1.0)
    t.record("cpu", "b", 2.0, 3.0)
    t.record("gpu", "c", 0.5, 2.5)
    assert t.busy("cpu") == pytest.approx(2.0)
    assert t.busy("gpu") == pytest.approx(2.0)
    assert t.span() == (0.0, 3.0)


def test_utilization_merges_overlaps():
    t = Tracer()
    t.record("gpu", "a", 0.0, 2.0)
    t.record("gpu", "b", 1.0, 3.0)  # overlapping
    t.record("cpu", "pad", 0.0, 4.0)
    assert t.utilization("gpu") == pytest.approx(3.0 / 4.0)


def test_empty_tracer():
    t = Tracer()
    assert t.span() == (0.0, 0.0)
    assert t.utilization("cpu") == 0.0  # repro: noqa[FLT001] - empty tracer, exact zero
    assert "(no events)" in render_text_gantt(t)


def test_gantt_render_shape():
    t = Tracer()
    t.record("cpu", "a", 0.0, 0.5)
    t.record("gpu", "b", 0.5, 1.0)
    out = render_text_gantt(t, width=20)
    lines = out.splitlines()
    assert "timeline" in lines[0]
    cpu_line = next(line for line in lines if line.startswith("cpu"))
    gpu_line = next(line for line in lines if line.startswith("gpu"))
    # CPU busy in the first half, GPU in the second
    assert "#" in cpu_line.split("|")[1][:10]
    assert "#" in gpu_line.split("|")[1][10:]


def test_gantt_width_validated():
    with pytest.raises(SimulationError):
        render_text_gantt(Tracer(), width=2)


def test_runtime_populates_tracer():
    tracer = Tracer()
    rt = make_runtime("hybrid")
    rt.tracer = tracer
    tl = rt.execute(make_tasks(120))
    assert tracer.by_category("cpu")
    assert tracer.by_category("gpu")
    assert tracer.by_category("pcie")
    assert tracer.by_category("preprocess")
    assert tracer.by_category("postprocess")
    # traced busy time agrees with the timeline's accounting: each GPU
    # slice interval holds exactly one stream slot, so the traced sum is
    # the pool's integrated slot-seconds
    assert tracer.busy("gpu") == pytest.approx(tl.gpu_slot_seconds, rel=1e-9)
    assert tracer.busy("pcie") == pytest.approx(tl.pcie_busy, rel=1e-9)
    # all events inside the run's span
    start, end = tracer.span()
    assert start >= 0.0
    assert end <= tl.total_seconds + 1e-12
    out = render_text_gantt(tracer)
    assert "gpu" in out


def test_tracing_does_not_change_timing():
    plain = make_runtime("hybrid").execute(make_tasks(100)).total_seconds
    rt = make_runtime("hybrid")
    rt.tracer = Tracer()
    traced = rt.execute(make_tasks(100)).total_seconds
    assert traced == pytest.approx(plain)
