"""Shared fixtures.

Expensive objects (operators with their block caches, projected
functions) are session-scoped: the underlying objects are immutable or
copied by the tests that mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.cpu_model import CpuModel
from repro.hardware.gpu_model import GpuModel
from repro.hardware.specs import TITAN_NODE
from repro.kernels.cpu_kernel import CpuMtxmKernel
from repro.kernels.cublas_gpu import CublasKernel
from repro.kernels.custom_gpu import CustomGpuKernel
from repro.mra.function import FunctionFactory
from repro.operators.convolution import CoulombOperator, GaussianConvolution
from repro.operators.gaussian_fit import single_gaussian
from repro.runtime.dispatcher import HybridDispatcher
from repro.runtime.node import NodeRuntime


def gaussian_1d(alpha: float = 300.0, center: float = 0.5):
    def f(x: np.ndarray) -> np.ndarray:
        return np.exp(-alpha * (x[:, 0] - center) ** 2)

    return f


def gaussian_nd(dim: int, alpha: float = 100.0):
    def f(x: np.ndarray) -> np.ndarray:
        return np.exp(-alpha * ((x - 0.5) ** 2).sum(axis=1))

    return f


@pytest.fixture(scope="session")
def factory_1d() -> FunctionFactory:
    return FunctionFactory(dim=1, k=8, thresh=1e-8)


@pytest.fixture(scope="session")
def f1d(factory_1d) -> "MultiresolutionFunction":
    return factory_1d.from_callable(gaussian_1d())


@pytest.fixture(scope="session")
def factory_2d() -> FunctionFactory:
    return FunctionFactory(dim=2, k=6, thresh=1e-5)


@pytest.fixture(scope="session")
def f2d(factory_2d):
    return factory_2d.from_callable(gaussian_nd(2, alpha=150.0))


@pytest.fixture(scope="session")
def factory_3d() -> FunctionFactory:
    return FunctionFactory(dim=3, k=6, thresh=1e-4)


@pytest.fixture(scope="session")
def f3d(factory_3d):
    return factory_3d.from_callable(gaussian_nd(3, alpha=100.0))


@pytest.fixture(scope="session")
def gauss_op_1d() -> GaussianConvolution:
    return GaussianConvolution(1, 8, single_gaussian(1.0, 400.0), thresh=1e-8)


@pytest.fixture(scope="session")
def gauss_op_2d() -> GaussianConvolution:
    return GaussianConvolution(2, 6, single_gaussian(1.0, 250.0), thresh=1e-6)


@pytest.fixture(scope="session")
def coulomb_op_small() -> CoulombOperator:
    return CoulombOperator(dim=3, k=6, eps=1e-3, r_lo=3e-3)


@pytest.fixture()
def cpu_model() -> CpuModel:
    return CpuModel(TITAN_NODE.cpu)


@pytest.fixture()
def gpu_model() -> GpuModel:
    return GpuModel(TITAN_NODE.gpu)


def make_runtime(
    mode: str = "hybrid",
    *,
    cpu_threads: int = 10,
    gpu_streams: int = 5,
    gpu_kernel: str = "custom",
    rank_reduction: bool = False,
    flush_interval: float = 0.005,
    max_batch_size: int = 60,
    **runtime_kwargs,
) -> NodeRuntime:
    cpu = CpuMtxmKernel(CpuModel(TITAN_NODE.cpu), rank_reduction=rank_reduction)
    gm = GpuModel(TITAN_NODE.gpu)
    gpu = CustomGpuKernel(gm) if gpu_kernel == "custom" else CublasKernel(gm)
    dispatcher = HybridDispatcher(
        cpu, gpu, cpu_threads=cpu_threads, gpu_streams=gpu_streams, mode=mode
    )
    return NodeRuntime(
        TITAN_NODE,
        dispatcher,
        flush_interval=flush_interval,
        max_batch_size=max_batch_size,
        **runtime_kwargs,
    )


@pytest.fixture()
def hybrid_runtime() -> NodeRuntime:
    return make_runtime("hybrid")


def pytest_addoption(parser):
    """``--update-golden`` regenerates the committed golden trace
    fixtures under ``tests/obs/golden/`` instead of comparing against
    them (see docs/OBSERVABILITY.md for the update workflow)."""
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite golden trace fixtures from the current runtime",
    )


@pytest.fixture()
def update_golden(request) -> bool:
    """Whether this run should rewrite golden fixtures."""
    return bool(request.config.getoption("--update-golden"))
