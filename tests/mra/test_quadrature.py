"""Tests for Gauss-Legendre quadrature and the scaling basis."""

import numpy as np
import pytest
from scipy.integrate import quad

from repro.mra.quadrature import QuadratureRule, gauss_legendre, phi_values


@pytest.mark.parametrize("npt", [1, 2, 5, 10])
def test_quadrature_weights_sum_to_one(npt):
    _x, w = gauss_legendre(npt)
    assert np.isclose(w.sum(), 1.0)


def test_quadrature_exact_for_polynomials():
    x, w = gauss_legendre(6)
    for degree in range(2 * 6):
        exact = 1.0 / (degree + 1)
        assert np.isclose(np.sum(w * x**degree), exact), degree


def test_quadrature_points_in_unit_interval():
    x, _w = gauss_legendre(12)
    assert np.all((x > 0) & (x < 1))


def test_quadrature_rejects_bad_order():
    with pytest.raises(ValueError):
        gauss_legendre(0)


def test_phi_orthonormality():
    """The scaling functions are orthonormal on [0, 1]."""
    k = 8
    x, w = gauss_legendre(k + 2)
    phi = phi_values(x, k)
    gram = (phi * w[:, None]).T @ phi
    assert np.allclose(gram, np.eye(k), atol=1e-12)


def test_phi_values_scalar_input():
    out = phi_values(0.5, 5)
    assert out.shape == (5,)
    # phi_0 = 1 everywhere; odd Legendre polynomials vanish at midpoint
    assert np.isclose(out[0], 1.0)
    assert np.isclose(out[1], 0.0)


def test_phi_normalisation_against_scipy():
    k = 6
    for i in range(k):
        val, _err = quad(lambda x, i=i: phi_values(x, k)[i] ** 2, 0.0, 1.0)
        assert np.isclose(val, 1.0, atol=1e-9), i


def test_phi_rejects_bad_order():
    with pytest.raises(ValueError):
        phi_values(0.5, 0)


def test_rule_projection_exact_for_basis():
    """Projecting phi_j through the rule recovers the unit vector."""
    k = 7
    rule = QuadratureRule.build(k)
    for j in range(k):
        f_vals = phi_values(rule.points, k)[:, j]
        coeffs = rule.phiw.T @ f_vals
        expected = np.zeros(k)
        expected[j] = 1.0
        assert np.allclose(coeffs, expected, atol=1e-12), j


def test_rule_caches_consistent_shapes():
    rule = QuadratureRule.build(5, npt=9)
    assert rule.phi.shape == (9, 5)
    assert rule.phiw.shape == (9, 5)
    assert rule.points.shape == (9,)
