"""Tests for dyadic box keys."""

import pytest

from repro.errors import TreeStructureError
from repro.mra.key import Key


def test_root():
    r = Key.root(3)
    assert r.level == 0
    assert r.translation == (0, 0, 0)
    assert r.dim == 3


def test_children_count_and_levels():
    k = Key(1, (0, 1))
    kids = list(k.children())
    assert len(kids) == 4
    assert all(c.level == 2 for c in kids)
    assert len(set(kids)) == 4


def test_parent_child_roundtrip():
    k = Key(2, (1, 3, 2))
    for child in k.children():
        assert child.parent() == k


def test_child_index_order():
    k = Key(0, (0, 0))
    kids = list(k.children())
    assert [c.child_index() for c in kids] == [0, 1, 2, 3]


def test_root_has_no_parent():
    with pytest.raises(TreeStructureError):
        Key.root(2).parent()


def test_translation_range_validated():
    with pytest.raises(TreeStructureError):
        Key(1, (2,))
    with pytest.raises(TreeStructureError):
        Key(1, (-1,))
    with pytest.raises(TreeStructureError):
        Key(-1, (0,))


def test_neighbor_inside_domain():
    k = Key(2, (1, 2))
    n = k.neighbor((1, -1))
    assert n == Key(2, (2, 1))


def test_neighbor_outside_domain_is_none():
    k = Key(1, (0, 1))
    assert k.neighbor((-1, 0)) is None
    assert k.neighbor((0, 1)) is None


def test_neighbor_dimension_check():
    with pytest.raises(TreeStructureError):
        Key(1, (0, 0)).neighbor((1,))


def test_box_geometry():
    k = Key(2, (1, 3))
    assert k.box_size() == 0.25
    assert k.box_center() == (0.375, 0.875)


def test_contains():
    k = Key(1, (0,))
    assert k.contains((0.25,))
    assert not k.contains((0.75,))
    edge = Key(1, (1,))
    assert edge.contains((1.0,))


def test_ordering_is_level_major():
    assert Key(0, (0,)) < Key(1, (0,)) < Key(1, (1,)) < Key(2, (0,))


def test_str_compact():
    assert str(Key(2, (1, 3))) == "(2: 1,3)"
