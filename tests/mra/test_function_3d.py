"""Multi-dimensional function tests (2-D and 3-D)."""

import numpy as np
import pytest

from repro.mra.function import FunctionFactory
from tests.conftest import gaussian_nd


def test_3d_projection_accuracy(f3d):
    g = gaussian_nd(3, alpha=100.0)
    for pt in [(0.5, 0.5, 0.5), (0.45, 0.55, 0.5), (0.3, 0.5, 0.6)]:
        exact = float(g(np.array([pt]))[0])
        assert abs(f3d.eval(pt) - exact) < 1e-3, pt


def test_3d_norm_matches_analytic(f3d):
    from scipy.integrate import quad

    one_d, _ = quad(lambda x: np.exp(-2 * 100.0 * (x - 0.5) ** 2), 0, 1)
    assert np.isclose(f3d.norm2(), one_d ** 1.5, rtol=2e-2)


def test_3d_compress_roundtrip(f3d):
    f = f3d.copy()
    before = {k: n.coeffs.copy() for k, n in f.tree.leaves()}
    f.compress().reconstruct()
    worst = max(
        float(np.abs(f.tree[k].coeffs - c).max()) for k, c in before.items()
    )
    assert worst < 1e-12


def test_2d_truncate_reduces_tree(f2d):
    f = f2d.copy()
    before = f.tree.size()
    f.truncate(1e-2)
    assert f.tree.size() < before
    f.tree.check_structure()
    # the truncated function still approximates the original
    diff = (f2d - f).norm2()
    assert diff < 5e-2


def test_truncate_preserves_form(f2d):
    f = f2d.copy()
    f.truncate()
    assert f.form == "reconstructed"
    g = f2d.copy().compress()
    g.truncate()
    assert g.form == "compressed"


def test_truncate_tol_zero_keeps_accuracy(f2d):
    f = f2d.copy()
    f.truncate(1e-14)
    diff = (f2d - f).norm2()
    assert diff < 1e-10


def test_describe(f3d):
    d = f3d.describe()
    assert d["dim"] == 3
    assert d["nodes"] == f3d.tree.size()
    assert d["leaves"] == f3d.tree.n_leaves()
    assert sum(d["level_histogram"].values()) == d["nodes"]


def test_conform_to_unifies_leaf_sets(f2d, factory_2d):
    g = factory_2d.from_callable(gaussian_nd(2, alpha=40.0))
    a, b = f2d.copy(), g.copy()
    a.conform_to(b)
    b.conform_to(a)
    leaves_a = {k for k, _n in a.tree.leaves()}
    leaves_b = {k for k, _n in b.tree.leaves()}
    assert leaves_a == leaves_b


def test_truncate_modes_scale_threshold():
    fac = FunctionFactory(dim=1, k=6, thresh=1e-4, truncate_mode="level")
    f = fac.zero()
    assert f.truncate_tol(0) == pytest.approx(1e-4)
    assert f.truncate_tol(2) == pytest.approx(1e-4 / 2.0)
    fac2 = FunctionFactory(dim=2, k=6, thresh=1e-4, truncate_mode="level_volume")
    f2 = fac2.zero()
    assert f2.truncate_tol(1) == pytest.approx(1e-4 / 2.0)


def test_factory_validation():
    with pytest.raises(Exception):
        FunctionFactory(dim=0, k=5)
    with pytest.raises(Exception):
        FunctionFactory(dim=1, k=0)
    with pytest.raises(Exception):
        FunctionFactory(dim=1, k=5, initial_level=5, max_level=2)


def test_operand_compatibility_checked(f2d, f3d):
    with pytest.raises(Exception):
        _ = f2d + f3d
