"""Tests for FunctionNode."""

import numpy as np

from repro.mra.node import FunctionNode


def test_empty_node():
    n = FunctionNode()
    assert not n.has_coeffs
    assert n.norm() == 0.0


def test_norm():
    n = FunctionNode(coeffs=np.full((2, 2), 3.0))
    assert np.isclose(n.norm(), 6.0)


def test_accumulate_allocates():
    n = FunctionNode()
    n.accumulate(np.ones((2, 2)))
    n.accumulate(np.ones((2, 2)))
    assert np.all(n.coeffs == 2.0)


def test_accumulate_does_not_alias():
    src = np.ones((2,))
    n = FunctionNode()
    n.accumulate(src)
    src[:] = 99.0
    assert np.all(n.coeffs == 1.0)


def test_copy_is_deep():
    n = FunctionNode(coeffs=np.ones((2,)), has_children=True)
    c = n.copy()
    c.coeffs[:] = 7.0
    assert np.all(n.coeffs == 1.0)
    assert c.has_children


def test_repr_mentions_shape():
    n = FunctionNode(coeffs=np.ones((3, 3)))
    assert "(3, 3)" in repr(n)
