"""Tests for the two-scale (quadrature mirror) filter."""

import numpy as np
import pytest

from repro.mra.quadrature import gauss_legendre, phi_values
from repro.mra.twoscale import TwoScaleFilter


@pytest.mark.parametrize("k", [1, 2, 5, 8, 12])
def test_filter_is_orthogonal(k):
    f = TwoScaleFilter.build(k)
    assert np.allclose(f.hg @ f.hg.T, np.eye(2 * k), atol=1e-12)
    assert np.allclose(f.hg.T @ f.hg, np.eye(2 * k), atol=1e-12)


def test_filter_blocks_assemble():
    f = TwoScaleFilter.build(6)
    assert np.allclose(f.hg[:6, :6], f.h0)
    assert np.allclose(f.hg[:6, 6:], f.h1)
    assert np.allclose(f.hg[6:, :6], f.g0)
    assert np.allclose(f.hg[6:, 6:], f.g1)


def test_two_scale_relation():
    """phi_i(x) = sum_j h0_ij sqrt2 phi_j(2x) + h1_ij sqrt2 phi_j(2x-1)."""
    k = 7
    f = TwoScaleFilter.build(k)
    xs = np.linspace(0.01, 0.99, 23)
    parent = phi_values(xs, k)  # (n, k)
    child = np.zeros_like(parent)
    left = xs < 0.5
    child_vals_left = np.sqrt(2.0) * phi_values(2 * xs[left], k)
    child_vals_right = np.sqrt(2.0) * phi_values(2 * xs[~left] - 1.0, k)
    child[left] = child_vals_left @ f.h0.T
    child[~left] = child_vals_right @ f.h1.T
    assert np.allclose(parent, child, atol=1e-10)


def test_filter_roundtrip_1d():
    k = 6
    f = TwoScaleFilter.build(k)
    rng = np.random.default_rng(0)
    s0, s1 = rng.standard_normal(k), rng.standard_normal(k)
    s, d = f.filter_pair(s0, s1)
    r0, r1 = f.unfilter_pair(s, d)
    assert np.allclose(r0, s0)
    assert np.allclose(r1, s1)


def test_filter_projects_coarse_polynomials_exactly():
    """A degree < k polynomial has zero wavelet coefficients."""
    k = 6
    f = TwoScaleFilter.build(k)
    x, w = gauss_legendre(k)
    # project x^2 onto both children of the root box
    poly = lambda t: t**2
    phi = phi_values(x, k)
    s_left = (w * poly(x / 2.0)) @ phi / np.sqrt(2.0)
    s_right = (w * poly((x + 1.0) / 2.0)) @ phi / np.sqrt(2.0)
    _s, d = f.filter_pair(s_left, s_right)
    assert np.allclose(d, 0.0, atol=1e-12)


def test_filter_norm_preservation():
    k = 5
    f = TwoScaleFilter.build(k)
    rng = np.random.default_rng(1)
    s0, s1 = rng.standard_normal(k), rng.standard_normal(k)
    s, d = f.filter_pair(s0, s1)
    assert np.isclose(
        np.linalg.norm(np.concatenate([s, d])),
        np.linalg.norm(np.concatenate([s0, s1])),
    )


def test_filter_is_cached():
    assert TwoScaleFilter.build(6) is TwoScaleFilter.build(6)


def test_filter_rejects_bad_order():
    with pytest.raises(ValueError):
        TwoScaleFilter.build(0)
