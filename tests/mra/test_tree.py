"""Tests for the FunctionTree container."""

import numpy as np
import pytest

from repro.errors import TreeStructureError
from repro.mra.key import Key
from repro.mra.node import FunctionNode
from repro.mra.tree import FunctionTree


def _two_level_tree(dim=2):
    t = FunctionTree(dim)
    root = Key.root(dim)
    t[root] = FunctionNode(has_children=True)
    for c in root.children():
        t[c] = FunctionNode(coeffs=np.ones((2,) * dim))
    return t


def test_mapping_interface():
    t = _two_level_tree()
    root = Key.root(2)
    assert root in t
    assert len(t) == 5
    assert t[root].has_children
    del t[Key(1, (1, 1))]
    assert len(t) == 4


def test_dimension_check_on_insert():
    t = FunctionTree(2)
    with pytest.raises(TreeStructureError):
        t[Key.root(3)] = FunctionNode()


def test_leaves_and_interior():
    t = _two_level_tree()
    assert sum(1 for _ in t.leaves()) == 4
    assert sum(1 for _ in t.interior()) == 1
    assert t.n_leaves() == 4


def test_by_level_order():
    t = _two_level_tree()
    levels = [k.level for k, _n in t.by_level()]
    assert levels == sorted(levels)
    levels_rev = [k.level for k, _n in t.by_level(reverse=True)]
    assert levels_rev == sorted(levels, reverse=True)


def test_level_histogram():
    t = _two_level_tree()
    assert t.level_histogram() == {0: 1, 1: 4}


def test_ensure_path_creates_ancestors():
    t = FunctionTree(2)
    deep = Key(3, (5, 2))
    node = t.ensure_path(deep)
    assert not node.has_children
    k = deep
    while k.level > 0:
        k = k.parent()
        assert t[k].has_children
    t.check_structure(complete=False)


def test_ensure_path_idempotent():
    t = FunctionTree(1)
    k = Key(2, (1,))
    n1 = t.ensure_path(k)
    n2 = t.ensure_path(k)
    assert n1 is n2
    assert len(t) == 3


def test_check_structure_complete_tree():
    _two_level_tree().check_structure()


def test_check_structure_missing_root():
    t = FunctionTree(1)
    t._nodes[Key(1, (0,))] = FunctionNode()
    with pytest.raises(TreeStructureError):
        t.check_structure()


def test_check_structure_missing_child():
    t = _two_level_tree()
    del t[Key(1, (0, 0))]
    with pytest.raises(TreeStructureError):
        t.check_structure()
    t.check_structure(complete=False)  # relaxed mode tolerates it


def test_check_structure_orphan():
    t = _two_level_tree()
    t._nodes[Key(2, (0, 0))] = FunctionNode()
    # its parent (1,(0,0)) exists but is a leaf
    with pytest.raises(TreeStructureError):
        t.check_structure(complete=False)


def test_copy_is_deep():
    t = _two_level_tree()
    c = t.copy()
    c[Key(1, (0, 0))].coeffs[:] = 5.0
    assert np.all(t[Key(1, (0, 0))].coeffs == 1.0)


def test_max_level_empty_tree():
    with pytest.raises(TreeStructureError):
        FunctionTree(1).max_level()


def test_invalid_dim():
    with pytest.raises(TreeStructureError):
        FunctionTree(0)
