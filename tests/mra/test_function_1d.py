"""1-D function tests: projection accuracy, forms, norms, evaluation."""

import numpy as np
import pytest
from scipy.integrate import quad

from repro.errors import OperatorError
from repro.mra.function import FunctionFactory
from tests.conftest import gaussian_1d

ALPHA = 300.0


def test_projection_pointwise_accuracy(f1d):
    g = gaussian_1d(ALPHA)
    for x in (0.1, 0.35, 0.5, 0.62, 0.9):
        exact = float(g(np.array([[x]]))[0])
        assert abs(f1d.eval((x,)) - exact) < 1e-6, x


def test_tree_is_adaptive(f1d):
    """Refinement concentrates where the Gaussian varies."""
    hist = f1d.tree.level_histogram()
    assert f1d.tree.max_level() >= 3
    # the deepest level is not fully populated (adaptivity)
    deepest = f1d.tree.max_level()
    assert hist[deepest] < 2**deepest


def test_norm_matches_integral(f1d):
    exact, _err = quad(lambda x: np.exp(-2 * ALPHA * (x - 0.5) ** 2), 0, 1)
    assert np.isclose(f1d.norm2(), np.sqrt(exact), atol=1e-8)


def test_compress_reconstruct_roundtrip(f1d):
    f = f1d.copy()
    before = {k: n.coeffs.copy() for k, n in f.tree.leaves()}
    f.compress()
    assert f.form == "compressed"
    f.reconstruct()
    assert f.form == "reconstructed"
    for k, c in before.items():
        assert np.allclose(f.tree[k].coeffs, c, atol=1e-12)


def test_compress_preserves_norm(f1d):
    f = f1d.copy()
    n0 = f.norm2()
    f.compress()
    assert np.isclose(f.norm2(), n0, atol=1e-12)


def test_compress_idempotent(f1d):
    f = f1d.copy().compress()
    coeffs = f.tree[f.tree.root].coeffs.copy()
    f.compress()
    assert np.allclose(f.tree[f.tree.root].coeffs, coeffs)


def test_nonstandard_form_roundtrip(f1d):
    f = f1d.copy()
    f.nonstandard()
    assert f.form == "nonstandard"
    # interior nodes hold (2k) combined tensors, leaves hold k
    for key, node in f.tree.items():
        if node.has_children:
            assert node.coeffs.shape == (2 * f.k,)
        else:
            assert node.coeffs.shape == (f.k,)
    f.reconstruct()
    assert abs(f.eval((0.5,)) - 1.0) < 1e-6


def test_eval_requires_reconstructed(f1d):
    f = f1d.copy().compress()
    with pytest.raises(OperatorError):
        f.eval((0.5,))


def test_eval_outside_domain_is_zero(f1d):
    assert f1d.eval((1.5,)) == 0.0
    assert f1d.eval((-0.2,)) == 0.0


def test_norm2_rejects_nonstandard(f1d):
    f = f1d.copy().nonstandard()
    with pytest.raises(OperatorError):
        f.norm2()


def test_scale(f1d):
    f = f1d.copy().scale(3.0)
    assert np.isclose(f.eval((0.5,)), 3.0, atol=1e-5)
    assert np.isclose(f.norm2(), 3.0 * f1d.norm2())


def test_addition_and_subtraction(f1d, factory_1d):
    g = factory_1d.from_callable(gaussian_1d(ALPHA, center=0.4))
    total = f1d + g
    x = 0.45
    expected = f1d.eval((x,)) + g.eval((x,))
    assert np.isclose(total.eval((x,)), expected, atol=1e-8)
    diff = total - g
    assert np.isclose(diff.eval((x,)), f1d.eval((x,)), atol=1e-8)


def test_inner_product(f1d):
    """<f, f> equals the squared norm."""
    assert np.isclose(f1d.inner(f1d), f1d.norm2() ** 2, atol=1e-10)


def test_single_leaf_tree_compress_roundtrip(factory_1d):
    z = factory_1d.zero()
    z.compress()
    assert z.tree[z.tree.root].coeffs.shape == (2 * z.k,)
    z.reconstruct()
    assert z.tree[z.tree.root].coeffs.shape == (z.k,)
    assert z.norm2() == 0.0


def test_uniform_projection(factory_1d):
    f = factory_1d.uniform(gaussian_1d(ALPHA), level=5)
    assert f.tree.n_leaves() == 32
    assert abs(f.eval((0.5,)) - 1.0) < 1e-6


def test_refine_leaf_is_exact(f1d):
    f = f1d.copy()
    leaf = next(k for k, n in f.tree.leaves())
    val_before = f.eval(leaf.box_center())
    f.refine_leaf(leaf)
    assert np.isclose(f.eval(leaf.box_center()), val_before, atol=1e-12)
    assert f.tree[leaf].has_children


def test_eval_many_matches_eval(f1d):
    pts = np.array([[0.1], [0.35], [0.5], [1.4]])
    vals = f1d.eval_many(pts)
    assert vals.shape == (4,)
    for p, v in zip(pts, vals):
        assert v == f1d.eval(tuple(p))
    assert vals[-1] == 0.0  # outside the domain


def test_eval_many_shape_validated(f1d):
    with pytest.raises(OperatorError):
        f1d.eval_many(np.zeros((3, 2)))
