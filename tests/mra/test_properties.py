"""Property-based tests of the MRA substrate.

Random coefficient trees (not projections of smooth functions) are the
adversarial input here: compress/reconstruct must be an exact identity
and an isometry on *any* structurally valid tree.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mra.function import MultiresolutionFunction, RECONSTRUCTED
from repro.mra.key import Key
from repro.mra.node import FunctionNode
from repro.mra.tree import FunctionTree


def random_tree(rng: np.random.Generator, dim: int, k: int, depth: int) -> FunctionTree:
    """Grow a random adaptive tree with random leaf coefficients."""
    tree = FunctionTree(dim)
    root = Key.root(dim)

    def grow(key: Key, level_budget: int) -> None:
        if level_budget > 0 and rng.random() < 0.5:
            tree[key] = FunctionNode(has_children=True)
            for child in key.children():
                grow(child, level_budget - 1)
        else:
            tree[key] = FunctionNode(coeffs=rng.standard_normal((k,) * dim))

    grow(root, depth)
    return tree


def make_function(seed: int, dim: int, k: int, depth: int) -> MultiresolutionFunction:
    rng = np.random.default_rng(seed)
    return MultiresolutionFunction(
        dim, k, random_tree(rng, dim, k, depth), thresh=1e-8, form=RECONSTRUCTED
    )


seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(seeds, st.integers(1, 2), st.integers(2, 6), st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_compress_reconstruct_identity(seed, dim, k, depth):
    f = make_function(seed, dim, k, depth)
    before = {key: n.coeffs.copy() for key, n in f.tree.leaves()}
    f.compress().reconstruct()
    for key, coeffs in before.items():
        assert np.allclose(f.tree[key].coeffs, coeffs, atol=1e-10)


@given(seeds, st.integers(1, 2), st.integers(2, 6), st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_compress_is_isometry(seed, dim, k, depth):
    f = make_function(seed, dim, k, depth)
    n0 = f.norm2()
    f.compress()
    assert np.isclose(f.norm2(), n0, rtol=1e-10)


@given(seeds, st.integers(1, 2), st.integers(2, 5), st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_nonstandard_roundtrip(seed, dim, k, depth):
    f = make_function(seed, dim, k, depth)
    before = {key: n.coeffs.copy() for key, n in f.tree.leaves()}
    f.nonstandard().reconstruct()
    for key, coeffs in before.items():
        assert np.allclose(f.tree[key].coeffs, coeffs, atol=1e-10)


@given(seeds, st.integers(1, 2), st.integers(2, 5), st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_truncate_error_bounded_by_dropped_norm(seed, dim, k, depth):
    """||f - truncate(f)||^2 equals the dropped wavelet mass, which is
    bounded by the number of dropped interior nodes times tol^2."""
    f = make_function(seed, dim, k, depth)
    tol = 0.3
    g = f.copy()
    interior_before = sum(1 for _ in g.tree.interior())
    g.truncate(tol)
    interior_after = sum(1 for _ in g.tree.interior())
    dropped = interior_before - interior_after
    diff = (f - g).norm2()
    assert diff <= tol * np.sqrt(max(dropped, 0)) + 1e-9


@given(seeds, st.integers(1, 2), st.integers(2, 5), st.integers(1, 2))
@settings(max_examples=25, deadline=None)
def test_truncate_keeps_structure_valid(seed, dim, k, depth):
    f = make_function(seed, dim, k, depth)
    f.truncate(0.5)
    f.tree.check_structure()


@given(seeds, st.integers(1, 2), st.integers(2, 5), st.integers(1, 2))
@settings(max_examples=25, deadline=None)
def test_addition_commutes(seed, dim, k, depth):
    f = make_function(seed, dim, k, depth)
    g = make_function(seed + 1, dim, k, depth)
    lhs = f + g
    rhs = g + f
    for key, node in lhs.tree.leaves():
        assert np.allclose(node.coeffs, rhs.tree[key].coeffs, atol=1e-10)


@given(seeds, st.integers(1, 2), st.integers(2, 5))
@settings(max_examples=25, deadline=None)
def test_eval_agrees_after_refinement(seed, dim, k):
    """refine_leaf must not change point values anywhere in the box."""
    f = make_function(seed, dim, k, 1)
    leaf = next(key for key, _n in f.tree.leaves())
    rng = np.random.default_rng(seed)
    pts = []
    scale = leaf.box_size()
    for _ in range(3):
        pts.append(
            tuple(
                (t + rng.uniform(0.05, 0.95)) * scale
                for t in leaf.translation
            )
        )
    before = [f.eval(p) for p in pts]
    f.refine_leaf(leaf)
    after = [f.eval(p) for p in pts]
    assert np.allclose(before, after, atol=1e-9)
