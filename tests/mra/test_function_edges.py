"""Edge-case tests for MultiresolutionFunction and FunctionFactory."""

import numpy as np
import pytest

from repro.errors import OperatorError
from repro.mra.function import FunctionFactory, MultiresolutionFunction
from repro.mra.tree import FunctionTree
from tests.conftest import gaussian_1d


def test_initial_level_forces_minimum_depth():
    shallow = FunctionFactory(dim=1, k=6, thresh=1e-2, initial_level=1)
    deep = FunctionFactory(dim=1, k=6, thresh=1e-2, initial_level=4)
    f_shallow = shallow.from_callable(gaussian_1d(5.0))
    f_deep = deep.from_callable(gaussian_1d(5.0))
    # a very smooth function truncates early unless initial_level forces
    # refinement to continue
    assert f_deep.tree.max_level() >= 5
    assert f_deep.tree.max_level() > f_shallow.tree.max_level()


def test_max_level_floor_terminates():
    """A discontinuous function cannot satisfy the threshold; max_level
    must stop the recursion."""
    fac = FunctionFactory(dim=1, k=4, thresh=1e-12, max_level=5)

    def step(x):
        return (x[:, 0] > 0.37).astype(float)

    f = fac.from_callable(step)
    assert f.tree.max_level() == 5
    f.tree.check_structure()


def test_truncate_explicit_tol_overrides_thresh(f1d):
    loose = f1d.copy()
    tight = f1d.copy()
    loose.truncate(1e-2)
    tight.truncate(1e-12)
    assert loose.tree.size() <= tight.tree.size()


def test_zero_function_round_trips():
    fac = FunctionFactory(dim=2, k=5, thresh=1e-6)
    z = fac.zero()
    assert z.norm2() == 0.0
    z.compress().reconstruct()
    assert z.norm2() == 0.0
    assert z.eval((0.3, 0.7)) == 0.0


def test_uniform_level_zero():
    fac = FunctionFactory(dim=1, k=8, thresh=1e-6)
    f = fac.uniform(gaussian_1d(3.0), level=0)
    assert f.tree.size() == 1
    assert abs(f.eval((0.5,)) - 1.0) < 1e-3  # smooth enough for one box


def test_constructor_validates_form_and_mode():
    tree = FunctionTree(1)
    with pytest.raises(OperatorError):
        MultiresolutionFunction(1, 4, tree, form="weird")
    with pytest.raises(OperatorError):
        MultiresolutionFunction(1, 4, tree, truncate_mode="weird")


def test_constructor_validates_tree_dim():
    from repro.errors import TreeStructureError

    with pytest.raises(TreeStructureError):
        MultiresolutionFunction(2, 4, FunctionTree(3))


def test_copy_preserves_configuration(f2d):
    c = f2d.copy()
    assert (c.dim, c.k, c.thresh, c.form, c.truncate_mode) == (
        f2d.dim, f2d.k, f2d.thresh, f2d.form, f2d.truncate_mode
    )
    # and is independent
    c.scale(2.0)
    assert not np.isclose(c.norm2(), f2d.norm2())


def test_call_dunder_matches_eval(f1d):
    assert f1d((0.5,)) == f1d.eval((0.5,))


def test_eval_wrong_dimension_rejected(f2d):
    with pytest.raises(OperatorError):
        f2d.eval((0.5,))


def test_conform_to_is_idempotent(f2d, factory_2d):
    from tests.conftest import gaussian_nd

    g = factory_2d.from_callable(gaussian_nd(2, alpha=30.0))
    a = f2d.copy()
    a.conform_to(g)
    size_once = a.tree.size()
    a.conform_to(g)
    assert a.tree.size() == size_once
