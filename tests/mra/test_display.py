"""Tests for the text tree renderers."""

import pytest

from repro.mra.display import level_histogram_chart, occupancy_strip, tree_summary


def test_histogram_chart_rows_match_levels(f1d):
    chart = level_histogram_chart(f1d)
    hist = f1d.tree.level_histogram()
    # header + one row per level
    assert len(chart.splitlines()) == 1 + len(hist)
    for level, count in hist.items():
        assert str(count) in chart


def test_occupancy_strip_marks_center(f1d):
    """The 1-D Gaussian is centred at 0.5: the deepest strip is marked
    near the middle and blank at the edges."""
    strip = occupancy_strip(f1d, width=64)
    deepest_line = strip.splitlines()[-1]
    cells = deepest_line.split("|")[1]
    mid = cells[len(cells) // 2 - 4 : len(cells) // 2 + 4]
    assert "#" in mid
    assert cells[0] == " " and cells[-1] == " "


def test_occupancy_strip_axis_validated(f2d):
    with pytest.raises(ValueError):
        occupancy_strip(f2d, axis=5)


def test_tree_summary_mentions_counts(f3d):
    s = tree_summary(f3d)
    assert str(f3d.tree.size()) in s
    assert "adaptivity" in s


def test_every_level_with_leaves_appears(f2d):
    strip = occupancy_strip(f2d)
    leaf_levels = {k.level for k, _n in f2d.tree.leaves()}
    for level in leaf_levels:
        assert f"L{level:<2}" in strip


def test_histogram_bars_scale_with_counts(f1d):
    chart = level_histogram_chart(f1d, width=40)
    hist = f1d.tree.level_histogram()
    bars = {
        int(line.split()[0]): line.split()[-1]
        for line in chart.splitlines()[1:]
    }
    peak = max(hist.values())
    for level, count in hist.items():
        # every level draws at least one mark; the peak fills the width
        assert 1 <= len(bars[level]) <= 40
        if count == peak:
            assert len(bars[level]) == 40


def test_occupancy_strip_negative_axis_rejected(f2d):
    with pytest.raises(ValueError, match="axis"):
        occupancy_strip(f2d, axis=-1)


def test_occupancy_strip_narrow_width_still_marks(f1d):
    # deep boxes narrower than one column must still leave a mark
    strip = occupancy_strip(f1d, width=4)
    for line in strip.splitlines():
        assert "#" in line


def test_occupancy_strip_second_axis(f2d):
    # a symmetric 2-D Gaussian refines identically along both axes
    assert occupancy_strip(f2d, axis=0) == occupancy_strip(f2d, axis=1)


def test_tree_summary_fraction_formats(f1d):
    s = tree_summary(f1d)
    assert "%" in s and "depth" in s
