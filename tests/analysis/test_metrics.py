"""Tests for performance metrics."""

import pytest

from repro.analysis.metrics import gflops, scaling_efficiency, speedup
from repro.errors import ReproError


def test_gflops():
    assert gflops(2_000_000_000, 1.0) == pytest.approx(2.0)


def test_gflops_invalid_time():
    with pytest.raises(ReproError):
        gflops(10, 0.0)


def test_speedup():
    assert speedup(100.0, 25.0) == pytest.approx(4.0)


def test_speedup_invalid():
    with pytest.raises(ReproError):
        speedup(1.0, 0.0)


def test_scaling_efficiency_ideal():
    assert scaling_efficiency(100.0, 2, 50.0, 4) == pytest.approx(1.0)


def test_scaling_efficiency_sublinear():
    # doubling nodes only saved 25%
    assert scaling_efficiency(100.0, 2, 75.0, 4) == pytest.approx(2.0 / 3.0)


def test_scaling_efficiency_invalid():
    with pytest.raises(ReproError):
        scaling_efficiency(0.0, 1, 1.0, 2)
