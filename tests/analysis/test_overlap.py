"""Tests for the optimal-overlap analysis."""

import pytest

from repro.analysis.overlap import analyze_overlap


def test_table1_numbers():
    """Table I: CPU 24.3 s (10 threads), GPU 24.3 s, actual 14.4, optimal 12.1."""
    a = analyze_overlap(24.3, 24.3, 14.4)
    assert a.optimal_seconds == pytest.approx(12.15, abs=0.01)
    assert not a.super_optimal
    assert a.cpu_fraction == pytest.approx(0.5)


def test_table5_super_optimal_case():
    """Table V, 6 nodes: CPU 201, GPU 35, actual 25 < optimal 29.8."""
    a = analyze_overlap(201.0, 35.0, 25.0)
    assert a.optimal_seconds == pytest.approx(201 * 35 / 236, rel=1e-3)
    assert a.super_optimal


def test_speedups():
    a = analyze_overlap(100.0, 50.0, 40.0)
    assert a.speedup_vs_cpu == pytest.approx(2.5)
    assert a.speedup_vs_gpu == pytest.approx(1.25)


def test_cpu_fraction_favors_faster_device():
    a = analyze_overlap(10.0, 90.0, 9.0)
    # slow GPU -> most work stays on CPU
    assert a.cpu_fraction == pytest.approx(0.9)


def test_exactly_optimal_is_not_super_optimal():
    # the bound itself is not beaten by hitting it
    optimal = 24.3 * 24.3 / (24.3 + 24.3)
    a = analyze_overlap(24.3, 24.3, optimal)
    assert not a.super_optimal


def test_analysis_is_frozen():
    a = analyze_overlap(10.0, 10.0, 6.0)
    with pytest.raises(Exception):
        a.hybrid_seconds = 1.0


def test_fields_are_recorded_verbatim():
    a = analyze_overlap(100.0, 50.0, 40.0)
    assert (a.cpu_only_seconds, a.gpu_only_seconds, a.hybrid_seconds) == (
        100.0, 50.0, 40.0,
    )
    assert 0.0 < a.cpu_fraction < 1.0
