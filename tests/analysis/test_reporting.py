"""Tests for the report table renderer."""

import pytest

from repro.analysis.reporting import ReportTable
from repro.errors import ReproError


def test_render_contains_everything():
    t = ReportTable("Table I", ["nodes", "paper (s)", "measured (s)"])
    t.add_row(2, 88.0, 91.3)
    t.add_row(16, 19.0, None)
    t.add_note("anchored to the CPU baseline")
    out = t.render()
    assert "Table I" in out
    assert "nodes" in out
    assert "88" in out
    assert "-" in out  # None renders as dash
    assert "anchored" in out


def test_row_width_validated():
    t = ReportTable("x", ["a", "b"])
    with pytest.raises(ReproError):
        t.add_row(1)


def test_float_formatting():
    t = ReportTable("x", ["v"])
    t.add_row(1234.5)
    t.add_row(12.34)
    t.add_row(0.001234)
    out = t.render()
    assert "1,234" in out or "1,235" in out
    assert "12.3" in out
    assert "0.00123" in out


def test_empty_table_renders():
    t = ReportTable("empty", ["a"])
    assert "empty" in t.render()


def _metrics():
    from repro.runtime.metrics import BatchMetrics, RuntimeMetrics

    m = RuntimeMetrics()
    m.record(
        BatchMetrics(
            index=0,
            kind="integral_compute",
            n_items=10,
            n_cpu_items=4,
            n_gpu_items=6,
            cpu_fraction=0.4,
            est_cpu_seconds=0.010,
            est_gpu_seconds=0.020,
            cpu_scale=1.0,
            gpu_scale=2.0,
            measured_cpu_seconds=0.012,
            transfer_in_seconds=0.003,
            transfer_out_seconds=0.001,
            block_wait_seconds=0.002,
            measured_gpu_seconds=0.008,
            blocks_shipped=5,
            blocks_waited=1,
            blocks_hit=3,
            dispatched_at=0.0,
            completed_at=0.025,
        )
    )
    return m


def test_batch_metrics_table_renders_rows_and_counters():
    from repro.analysis.reporting import batch_metrics_table

    out = batch_metrics_table(_metrics()).render()
    assert "Per-batch pipeline metrics" in out
    assert "integral_compute" in out
    assert "5/1/3" in out  # ship/wait/hit cache outcome
    assert "1 batches" in out and "10 items" in out
    assert "shipped=5 waited=1 hit=3" in out


def test_calibration_table_shows_scales_and_error():
    from repro.analysis.reporting import calibration_table

    out = calibration_table(_metrics()).render()
    assert "Dispatcher calibration" in out
    assert "gpu scale" in out
    assert "mean |measured/estimate - 1|" in out
