"""Tests for the report table renderer."""

import pytest

from repro.analysis.reporting import ReportTable
from repro.errors import ReproError


def test_render_contains_everything():
    t = ReportTable("Table I", ["nodes", "paper (s)", "measured (s)"])
    t.add_row(2, 88.0, 91.3)
    t.add_row(16, 19.0, None)
    t.add_note("anchored to the CPU baseline")
    out = t.render()
    assert "Table I" in out
    assert "nodes" in out
    assert "88" in out
    assert "-" in out  # None renders as dash
    assert "anchored" in out


def test_row_width_validated():
    t = ReportTable("x", ["a", "b"])
    with pytest.raises(ReproError):
        t.add_row(1)


def test_float_formatting():
    t = ReportTable("x", ["v"])
    t.add_row(1234.5)
    t.add_row(12.34)
    t.add_row(0.001234)
    out = t.render()
    assert "1,234" in out or "1,235" in out
    assert "12.3" in out
    assert "0.00123" in out


def test_empty_table_renders():
    t = ReportTable("empty", ["a"])
    assert "empty" in t.render()
