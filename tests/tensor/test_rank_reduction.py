"""Tests for rank reduction (paper Section II-D)."""

import numpy as np
import pytest

from repro.errors import TensorShapeError
from repro.tensor.flops import mtxm_flops
from repro.tensor.mtxm import mtxmq
from repro.tensor.rank_reduction import (
    effective_rank,
    pad_reduced_result,
    rank_reduce_pair,
    reduced_transform_flops,
)


def _decaying_matrix(k, decay=0.1, seed=0):
    """A matrix whose trailing rows/columns decay geometrically, like the
    high-polynomial-degree blocks of a smooth separated operator."""
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((k, k))
    scale = decay ** np.arange(k)
    return m * np.outer(scale, scale)


def test_effective_rank_full_matrix():
    h = np.eye(6)
    assert effective_rank(h, 1e-12, axis=0) == 6
    assert effective_rank(h, 1e-12, axis=1) == 6


def test_effective_rank_decaying():
    h = _decaying_matrix(10, decay=0.1)
    r = effective_rank(h, 1e-6, axis=0)
    assert 1 <= r < 10


def test_effective_rank_zero_matrix_is_one():
    assert effective_rank(np.zeros((5, 5)), 1e-12, axis=0) == 1


def test_effective_rank_bad_axis():
    with pytest.raises(ValueError):
        effective_rank(np.eye(3), 1e-6, axis=2)


def test_effective_rank_needs_matrix():
    with pytest.raises(TensorShapeError):
        effective_rank(np.zeros(5), 1e-6, axis=0)


def test_reduced_product_accuracy():
    """The reduced multiply agrees with the full one to tolerance."""
    k = 12
    tol = 1e-8
    rng = np.random.default_rng(1)
    s = rng.standard_normal((k, k * k))
    h = _decaying_matrix(k, decay=0.15, seed=2)
    full = mtxmq(s, h)
    s_red, h_red, _cols = rank_reduce_pair(s, h, tol)
    reduced = pad_reduced_result(mtxmq(s_red, h_red), k)
    # error is bounded by the dropped slice norms times the data norm
    assert np.linalg.norm(full - reduced) <= 100 * tol * np.linalg.norm(s)


def test_reduction_saves_flops():
    """For typical decaying operators the saving is substantial (the
    paper reports up to ~2.5x on the CPU)."""
    k = 16
    h = _decaying_matrix(k, decay=0.3, seed=3)
    rest = k * k
    full = mtxm_flops(rest, k, k)
    reduced = reduced_transform_flops(h, rest, 1e-6)
    assert reduced < full
    assert full / reduced > 1.5


def test_no_reduction_when_full_rank():
    k = 8
    rng = np.random.default_rng(4)
    h = rng.standard_normal((k, k))  # no decay: nothing to drop
    s = rng.standard_normal((k, 4))
    s_red, h_red, cols = rank_reduce_pair(s, h, 1e-12)
    assert s_red.shape == s.shape
    assert h_red.shape == h.shape
    assert cols == k


def test_pad_preserves_values():
    c = np.arange(6.0).reshape(2, 3)
    out = pad_reduced_result(c, 5)
    assert out.shape == (2, 5)
    assert np.allclose(out[:, :3], c)
    assert np.all(out[:, 3:] == 0)


def test_pad_rejects_shrinking():
    with pytest.raises(TensorShapeError):
        pad_reduced_result(np.zeros((2, 5)), 3)


def test_rank_reduce_shape_mismatch():
    with pytest.raises(TensorShapeError):
        rank_reduce_pair(np.zeros((3, 4)), np.zeros((5, 5)), 1e-6)
