"""Tests for d-dimensional transforms (Formula 1 inner loop)."""

import numpy as np
import pytest

from repro.errors import TensorShapeError
from repro.tensor.transform import (
    inner_product,
    transform,
    transform_dim,
    transform_seq,
)


def _dense_transform(s, hs):
    """Direct einsum evaluation of r[i..] = sum_j s[j..] prod h[j_a, i_a]."""
    dim = s.ndim
    in_idx = "abcd"[:dim]
    out_idx = "uvwx"[:dim]
    spec = in_idx + "," + ",".join(f"{i}{o}" for i, o in zip(in_idx, out_idx))
    return np.einsum(spec + "->" + out_idx, s, *hs)


@pytest.mark.parametrize("dim", [1, 2, 3, 4])
def test_transform_matches_dense(dim):
    k = 5
    rng = np.random.default_rng(dim)
    s = rng.standard_normal((k,) * dim)
    h = rng.standard_normal((k, k))
    assert np.allclose(transform(s, h), _dense_transform(s, [h] * dim))


@pytest.mark.parametrize("dim", [1, 2, 3])
def test_transform_seq_distinct_matrices(dim):
    k = 4
    rng = np.random.default_rng(10 + dim)
    s = rng.standard_normal((k,) * dim)
    hs = [rng.standard_normal((k, k)) for _ in range(dim)]
    assert np.allclose(transform_seq(s, hs), _dense_transform(s, hs))


def test_transform_identity():
    s = np.random.default_rng(5).standard_normal((4, 4, 4))
    assert np.allclose(transform(s, np.eye(4)), s)


def test_transform_orthogonal_preserves_norm():
    rng = np.random.default_rng(6)
    s = rng.standard_normal((6, 6))
    q, _ = np.linalg.qr(rng.standard_normal((6, 6)))
    r = transform(s, q)
    assert np.isclose(np.linalg.norm(r), np.linalg.norm(s))


def test_transform_dim_rotates_axes():
    rng = np.random.default_rng(7)
    s = rng.standard_normal((3, 4, 5))  # deliberately unequal extents
    h = rng.standard_normal((3, 7))
    out = transform_dim(s, h)
    assert out.shape == (4, 5, 7)
    expected = np.einsum("abc,au->bcu", s, h)
    assert np.allclose(out, expected)


def test_transform_rejects_non_cube():
    with pytest.raises(TensorShapeError):
        transform(np.zeros((3, 4)), np.eye(3))


def test_transform_seq_wrong_count():
    with pytest.raises(TensorShapeError):
        transform_seq(np.zeros((3, 3)), [np.eye(3)])


def test_transform_rejects_mismatched_operator():
    with pytest.raises(TensorShapeError):
        transform(np.zeros((3, 3)), np.eye(4))


def test_inner_product():
    rng = np.random.default_rng(8)
    a = rng.standard_normal((4, 4))
    b = rng.standard_normal((4, 4))
    assert np.isclose(inner_product(a, b), float(np.sum(a * b)))


def test_inner_product_shape_mismatch():
    with pytest.raises(TensorShapeError):
        inner_product(np.zeros((2, 2)), np.zeros((3, 3)))
