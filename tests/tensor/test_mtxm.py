"""Tests for the mtxmq primitive."""

import numpy as np
import pytest

from repro.errors import TensorShapeError
from repro.tensor.flops import flop_counter, mtxm_flops
from repro.tensor.mtxm import mtxmq, mtxmq_transpose


def test_mtxmq_matches_numpy():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((5, 12))
    b = rng.standard_normal((5, 7))
    assert np.allclose(mtxmq(a, b), a.T @ b)


def test_mtxmq_paper_shape():
    """The paper's (k^2, k) x (k, k) product, stored contraction-first."""
    k = 10
    rng = np.random.default_rng(1)
    s = rng.standard_normal((k, k * k))  # contraction index leading
    h = rng.standard_normal((k, k))
    out = mtxmq(s, h)
    assert out.shape == (k * k, k)
    assert np.allclose(out, s.T @ h)


def test_mtxmq_transpose_matches_numpy():
    rng = np.random.default_rng(2)
    a = rng.standard_normal((6, 9))
    b = rng.standard_normal((4, 6))
    assert np.allclose(mtxmq_transpose(a, b), a.T @ b.T)


def test_mtxmq_shape_mismatch():
    with pytest.raises(TensorShapeError):
        mtxmq(np.zeros((3, 4)), np.zeros((5, 5)))


def test_mtxmq_transpose_shape_mismatch():
    with pytest.raises(TensorShapeError):
        mtxmq_transpose(np.zeros((3, 4)), np.zeros((5, 5)))


def test_mtxmq_requires_2d():
    with pytest.raises(TensorShapeError):
        mtxmq(np.zeros(3), np.zeros((3, 3)))
    with pytest.raises(TensorShapeError):
        mtxmq(np.zeros((3, 3)), np.zeros(3))


def test_mtxmq_flop_accounting():
    a = np.ones((5, 12))
    b = np.ones((5, 7))
    with flop_counter() as fc:
        mtxmq(a, b)
    assert fc.flops == mtxm_flops(12, 5, 7)
    assert fc.by_label["mtxmq"] == fc.flops


def test_nested_flop_counters():
    a = np.ones((4, 4))
    with flop_counter() as outer:
        mtxmq(a, a)
        with flop_counter() as inner:
            mtxmq(a, a)
    assert inner.flops == mtxm_flops(4, 4, 4)
    assert outer.flops == 2 * inner.flops


def test_double_mtxmq_rotates_axes_back():
    """Two applications on a 2-D tensor restore the original orientation."""
    k = 6
    rng = np.random.default_rng(3)
    s = rng.standard_normal((k, k))
    h = rng.standard_normal((k, k))
    once = mtxmq(s, h)  # h^T s with axes rotated
    twice = mtxmq(once, h)
    expected = h.T @ s @ h
    assert np.allclose(twice, expected)
