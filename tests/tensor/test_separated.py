"""Tests for the separated-rank operator application (Formula 1)."""

import numpy as np
import pytest

from repro.errors import TensorShapeError
from repro.tensor.separated import SeparatedTerm, apply_separated


def _random_terms(rng, dim, k, rank, coeff_scale=1.0):
    return [
        SeparatedTerm(
            coeff=coeff_scale * float(rng.standard_normal()),
            factors=tuple(rng.standard_normal((k, k)) for _ in range(dim)),
        )
        for _ in range(rank)
    ]


def test_single_term_matches_dense():
    rng = np.random.default_rng(0)
    k = 4
    s = rng.standard_normal((k, k))
    term = _random_terms(rng, 2, k, 1)[0]
    got = apply_separated(s, [term])
    expected = term.coeff * np.einsum(
        "ab,au,bv->uv", s, term.factors[0], term.factors[1]
    )
    assert np.allclose(got, expected)


def test_rank_sum_linearity():
    rng = np.random.default_rng(1)
    k, dim, rank = 5, 3, 4
    s = rng.standard_normal((k,) * dim)
    terms = _random_terms(rng, dim, k, rank)
    whole = apply_separated(s, terms)
    parts = sum(apply_separated(s, [t]) for t in terms)
    assert np.allclose(whole, parts)


def test_norm_estimate_is_upper_bound():
    rng = np.random.default_rng(2)
    k, dim = 5, 2
    s = rng.standard_normal((k,) * dim)
    term = _random_terms(rng, dim, k, 1)[0]
    out = apply_separated(s, [term])
    bound = term.norm_estimate() * np.linalg.norm(s)
    assert np.linalg.norm(out) <= bound + 1e-12


def test_screening_skips_small_terms():
    rng = np.random.default_rng(3)
    k, dim = 4, 2
    s = rng.standard_normal((k,) * dim)
    big = _random_terms(rng, dim, k, 1)[0]
    tiny = SeparatedTerm(coeff=1e-300, factors=big.factors)
    screened = apply_separated(s, [big, tiny], screen_below=1e-6)
    assert np.allclose(screened, apply_separated(s, [big]))


def test_all_terms_screened_gives_zero():
    rng = np.random.default_rng(4)
    k, dim = 4, 2
    s = rng.standard_normal((k,) * dim)
    tiny = SeparatedTerm(
        coeff=1e-300, factors=tuple(rng.standard_normal((k, k)) for _ in range(dim))
    )
    out = apply_separated(s, [tiny], screen_below=1e-6)
    assert out.shape == s.shape
    assert np.all(out == 0.0)


def test_term_requires_matching_factor_shapes():
    with pytest.raises(TensorShapeError):
        SeparatedTerm(coeff=1.0, factors=(np.eye(3), np.eye(4)))


def test_term_requires_factors():
    with pytest.raises(TensorShapeError):
        SeparatedTerm(coeff=1.0, factors=())


def test_dimension_mismatch_rejected():
    term = SeparatedTerm(coeff=1.0, factors=(np.eye(3), np.eye(3)))
    with pytest.raises(TensorShapeError):
        apply_separated(np.zeros((3, 3, 3)), [term])


def test_empty_terms_rejected():
    with pytest.raises(TensorShapeError):
        apply_separated(np.zeros((3, 3)), [])


def test_rectangular_factors_change_output_shape():
    rng = np.random.default_rng(5)
    s = rng.standard_normal((4, 4))
    term = SeparatedTerm(
        coeff=2.0, factors=(rng.standard_normal((4, 6)), rng.standard_normal((4, 6)))
    )
    out = apply_separated(s, [term])
    assert out.shape == (6, 6)
