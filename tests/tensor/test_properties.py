"""Property-based tests of the tensor substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.mtxm import mtxmq
from repro.tensor.rank_reduction import pad_reduced_result, rank_reduce_pair
from repro.tensor.transform import transform, transform_seq

dims = st.integers(min_value=1, max_value=3)
sides = st.integers(min_value=1, max_value=6)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(seeds, sides, sides, sides)
@settings(max_examples=50, deadline=None)
def test_mtxmq_is_transposed_matmul(seed, q, r, c):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((q, r))
    b = rng.standard_normal((q, c))
    assert np.allclose(mtxmq(a, b), a.T @ b)


@given(seeds, dims, sides)
@settings(max_examples=40, deadline=None)
def test_transform_linear_in_input(seed, dim, k):
    rng = np.random.default_rng(seed)
    s1 = rng.standard_normal((k,) * dim)
    s2 = rng.standard_normal((k,) * dim)
    h = rng.standard_normal((k, k))
    lhs = transform(s1 + 2.0 * s2, h)
    rhs = transform(s1, h) + 2.0 * transform(s2, h)
    assert np.allclose(lhs, rhs, atol=1e-10)


@given(seeds, dims, st.integers(min_value=2, max_value=6))
@settings(max_examples=40, deadline=None)
def test_orthogonal_transform_preserves_norm(seed, dim, k):
    rng = np.random.default_rng(seed)
    s = rng.standard_normal((k,) * dim)
    q, _ = np.linalg.qr(rng.standard_normal((k, k)))
    r = transform(s, q)
    assert np.isclose(np.linalg.norm(r), np.linalg.norm(s), rtol=1e-10)


@given(seeds, dims, st.integers(min_value=2, max_value=5))
@settings(max_examples=40, deadline=None)
def test_transform_composition(seed, dim, k):
    """Transforming by h1 then h2 equals transforming by h1 @ h2."""
    rng = np.random.default_rng(seed)
    s = rng.standard_normal((k,) * dim)
    h1 = rng.standard_normal((k, k))
    h2 = rng.standard_normal((k, k))
    two_step = transform(transform(s, h1), h2)
    one_step = transform(s, h1 @ h2)
    assert np.allclose(two_step, one_step, atol=1e-9)


@given(seeds, st.integers(min_value=2, max_value=10), st.floats(0.05, 0.5))
@settings(max_examples=40, deadline=None)
def test_rank_reduction_error_bounded(seed, k, decay):
    """Reduced multiply differs from full by at most the dropped mass."""
    rng = np.random.default_rng(seed)
    tol = 1e-8
    scale = decay ** np.arange(k)
    h = rng.standard_normal((k, k)) * np.outer(scale, scale)
    s = rng.standard_normal((k, k))
    full = mtxmq(s, h)
    s_red, h_red, _ = rank_reduce_pair(s, h, tol)
    reduced = pad_reduced_result(mtxmq(s_red, h_red), k)
    # dropped rows/cols have norm <= tol each; k of them; data norm bound
    bound = 2 * k * tol * np.linalg.norm(s) + 1e-12
    assert np.linalg.norm(full - reduced) <= bound


@given(seeds, dims, st.integers(min_value=2, max_value=5))
@settings(max_examples=30, deadline=None)
def test_transform_seq_equals_transform_for_equal_factors(seed, dim, k):
    rng = np.random.default_rng(seed)
    s = rng.standard_normal((k,) * dim)
    h = rng.standard_normal((k, k))
    assert np.allclose(transform_seq(s, [h] * dim), transform(s, h))
