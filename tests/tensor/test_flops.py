"""Tests for FLOP accounting."""

import pytest

from repro.tensor.flops import (
    FlopCounter,
    add_flops,
    flop_counter,
    formula1_flops,
    mtxm_flops,
)


def test_mtxm_flops_formula():
    assert mtxm_flops(3, 4, 5) == 2 * 3 * 4 * 5


def test_formula1_flops_shape():
    dim, k, rank = 3, 10, 100
    per_term = dim * 2 * k ** (dim - 1) * k * k + k**dim
    assert formula1_flops(dim, k, rank) == rank * per_term


def test_formula1_flops_monotone_in_rank():
    assert formula1_flops(3, 10, 50) < formula1_flops(3, 10, 100)


def test_add_flops_without_counter_is_noop():
    add_flops(100, "orphan")  # must not raise


def test_counter_labels():
    with flop_counter() as fc:
        add_flops(5, "a")
        add_flops(7, "b")
        add_flops(3, "a")
    assert fc.flops == 15
    assert fc.by_label == {"a": 8, "b": 7}


def test_gflops():
    fc = FlopCounter(flops=2_000_000_000)
    assert fc.gflops(2.0) == pytest.approx(1.0)


def test_gflops_rejects_nonpositive_time():
    with pytest.raises(ValueError):
        FlopCounter(flops=1).gflops(0.0)
