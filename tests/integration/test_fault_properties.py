"""Property tests: resilience preserves work under any fault schedule.

Hypothesis drives randomized seeded fault schedules — transient GPU
fault rates, failure windows, permanent failures, retry budgets,
watchdogs and degraded-mode controllers — through a traced hybrid run
and asserts the effectively-exactly-once contract: every submitted
item is accumulated exactly once, no matter which faults fired, and
the happens-before log stays violation-free.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.injector import FaultInjector
from repro.faults.models import GpuFailure, PcieDegradation, StragglerNode
from repro.faults.policies import (
    DegradedModeController,
    GpuBatchTimeout,
    RetryPolicy,
)
from repro.lint.trace_check import verify_tracer
from repro.runtime.trace import Tracer
from tests.conftest import make_runtime
from tests.runtime.test_node_runtime import make_tasks

N_TASKS = 48


@st.composite
def gpu_failures(draw):
    """One GpuFailure: transient or permanent, whole-run or windowed."""
    permanent = draw(st.booleans())
    rate = 0.0 if permanent else draw(st.floats(0.05, 0.6))
    if draw(st.booleans()):
        start, end = 0.0, math.inf
    else:
        start = draw(st.floats(0.0, 0.02))
        end = start + draw(st.floats(0.005, 0.05))
    return GpuFailure(rate=rate, permanent=permanent, start=start, end=end)


fault_lists = st.lists(
    st.one_of(
        gpu_failures(),
        st.builds(
            PcieDegradation,
            bandwidth_factor=st.floats(0.2, 1.0, exclude_min=True),
        ),
        st.builds(StragglerNode, slowdown=st.floats(1.0, 3.0)),
    ),
    min_size=1,
    max_size=3,
)


@given(
    seed=st.integers(0, 2**32 - 1),
    faults=fault_lists,
    max_attempts=st.integers(1, 4),
    use_timeout=st.booleans(),
    use_degraded=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_any_fault_schedule_accumulates_each_item_exactly_once(
    seed, faults, max_attempts, use_timeout, use_degraded
):
    tasks = make_tasks(N_TASKS)
    tracer = Tracer()
    rt = make_runtime(
        "hybrid",
        fault_injector=FaultInjector(seed=seed, faults=faults),
        retry_policy=RetryPolicy(max_attempts=max_attempts, seed=seed),
        gpu_timeout=GpuBatchTimeout(timeout_seconds=0.05)
        if use_timeout
        else None,
        degraded_mode=DegradedModeController(
            fault_threshold=2, probe_interval=0.01
        )
        if use_degraded
        else None,
        tracer=tracer,
    )
    tl = rt.execute(tasks)

    # no item lost to the faults, none replayed into the results twice
    submitted = {id(t.work) for t in tasks}
    accumulated = [
        i for r in tracer.log if r.op == "accumulate" for i in r.ids
    ]
    assert set(accumulated) == submitted
    assert len(accumulated) == len(submitted)
    assert tl.n_cpu_items + tl.n_gpu_items == N_TASKS

    # the full happens-before + exactly-once contract
    verify_tracer(tracer)


@given(seed=st.integers(0, 2**32 - 1), rate=st.floats(0.05, 0.5))
@settings(max_examples=10, deadline=None)
def test_fault_schedules_are_reproducible(seed, rate):
    """Same seed, same faults, same policies — bit-identical timelines."""

    def once():
        return make_runtime(
            "hybrid",
            fault_injector=FaultInjector(
                seed=seed, faults=[GpuFailure(rate=rate)]
            ),
            retry_policy=RetryPolicy(max_attempts=3, seed=seed),
        ).execute(make_tasks(N_TASKS))

    a, b = once(), once()
    assert a.total_seconds == b.total_seconds
    assert a.n_gpu_faults == b.n_gpu_faults
    assert a.n_retries == b.n_retries
    assert a.n_fallback_items == b.n_fallback_items
