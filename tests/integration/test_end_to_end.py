"""End-to-end: the real Coulomb problem through the hybrid runtime.

This is the full paper pipeline on real numbers: adaptive projection ->
nonstandard form -> batched preprocess/compute/postprocess through the
simulated hybrid node -> sum-down -> point evaluation against the
analytic potential.
"""

import pytest

from repro.apps.coulomb import CoulombApplication
from repro.operators.apply_batched import BatchedApply
from tests.conftest import make_runtime


@pytest.fixture(scope="module")
def coulomb_problem():
    return CoulombApplication.real_instance(k=5, thresh=2e-3, eps=1e-3, alpha=150.0)


@pytest.fixture(scope="module")
def hybrid_result(coulomb_problem):
    density, operator, _exact = coulomb_problem
    return BatchedApply(operator, make_runtime("hybrid")).apply(density)


def test_hybrid_apply_matches_analytic_potential(coulomb_problem, hybrid_result):
    _density, _operator, exact = coulomb_problem
    v = hybrid_result.function
    for r in (0.05, 0.1, 0.2, 0.3):
        got = v.eval((0.5 + r, 0.5, 0.5))
        want = exact(r)
        assert abs(got - want) / want < 5e-3, (r, got, want)


def test_hybrid_used_both_devices(hybrid_result):
    tl = hybrid_result.timeline
    assert tl.n_cpu_items > 0
    assert tl.n_gpu_items > 0
    assert tl.gpu_busy > 0
    assert tl.cpu_compute_busy > 0


def test_result_tree_is_structurally_valid(hybrid_result):
    hybrid_result.function.tree.check_structure()


def test_result_survives_compress_truncate_cycle(coulomb_problem, hybrid_result):
    _density, _op, exact = coulomb_problem
    v = hybrid_result.function.copy()
    v.compress()
    v.truncate()
    v.reconstruct()
    r = 0.15
    assert abs(v.eval((0.5 + r, 0.5, 0.5)) - exact(r)) / exact(r) < 1e-2


def test_three_modes_agree_numerically(coulomb_problem):
    density, operator, _exact = coulomb_problem
    results = {
        mode: BatchedApply(operator, make_runtime(mode)).apply(density).function
        for mode in ("cpu", "gpu", "hybrid")
    }
    ref = results["cpu"]
    for mode in ("gpu", "hybrid"):
        assert (ref - results[mode]).norm2() < 1e-10


def test_simulated_times_ordered_sensibly(coulomb_problem):
    density, operator, _exact = coulomb_problem
    times = {
        mode: BatchedApply(operator, make_runtime(mode))
        .apply(density)
        .timeline.total_seconds
        for mode in ("cpu", "gpu", "hybrid")
    }
    assert times["hybrid"] <= 1.15 * min(times["cpu"], times["gpu"])
