"""Everything is deterministic: reruns reproduce results exactly.

EXPERIMENTS.md promises exact regeneration; these tests enforce it at
every layer (workload generation, process maps, DES timing, cluster
makespans).
"""

from repro.apps.workloads import SyntheticApplyWorkload
from repro.cluster.simulation import ClusterSimulation
from repro.dht.process_map import CostPartitionMap, HashProcessMap
from tests.conftest import make_runtime
from tests.runtime.test_node_runtime import make_tasks


def test_node_runtime_is_deterministic():
    a = make_runtime("hybrid").execute(make_tasks(150))
    b = make_runtime("hybrid").execute(make_tasks(150))
    assert a.total_seconds == b.total_seconds
    assert a.n_cpu_items == b.n_cpu_items
    assert a.n_batches == b.n_batches
    assert a.bytes_to_gpu == b.bytes_to_gpu


def test_cluster_run_is_deterministic():
    wl = SyntheticApplyWorkload(
        dim=3, k=10, rank=40, n_tasks=1500, n_tree_leaves=128, seed=11
    )
    runs = [
        ClusterSimulation(4, HashProcessMap(4), mode="hybrid").run(wl.tasks)
        for _ in range(2)
    ]
    assert runs[0].makespan_seconds == runs[1].makespan_seconds
    assert runs[0].total_messages == runs[1].total_messages
    for r0, r1 in zip(runs[0].node_results, runs[1].node_results):
        assert r0.timeline.total_seconds == r1.timeline.total_seconds


def test_cost_partition_is_deterministic():
    wl = SyntheticApplyWorkload(
        dim=2, k=6, rank=10, n_tasks=500, n_tree_leaves=64, seed=3
    )
    weights = {t.key: 1.0 for t in wl.tasks}
    a = CostPartitionMap.from_weights(6, weights, target_chunks=12)
    b = CostPartitionMap.from_weights(6, weights, target_chunks=12)
    for t in wl.tasks:
        assert a.owner(t.key) == b.owner(t.key)


def test_workloads_identical_across_instances():
    mk = lambda: SyntheticApplyWorkload(
        dim=4, k=14, rank=20, n_tasks=800, n_tree_leaves=128, seed=41
    )
    a, b = mk(), mk()
    assert [t.key for t in a.tasks] == [t.key for t in b.tasks]
    assert [t.neighbor for t in a.tasks] == [t.neighbor for t in b.tasks]
    assert a.total_flops == b.total_flops
