"""Dynamic happens-before verification of real runtime executions.

Runs the actual :class:`~repro.runtime.node.NodeRuntime` under a
:class:`~repro.runtime.trace.Tracer` and replays the structured log
through :mod:`repro.lint.trace_check`: no work item may appear in two
flushed batches, per-kind submission order must be preserved, and no
GPU operator block may cross PCIe twice.
"""

from __future__ import annotations

import pytest

from repro.lint.trace_check import find_violations, verify_tracer
from repro.runtime.trace import Tracer
from tests.conftest import make_runtime
from tests.runtime.test_node_runtime import make_tasks


def traced_run(mode: str, n_tasks: int = 150, **kwargs) -> Tracer:
    """Execute a traced run and return its tracer."""
    tracer = Tracer()
    rt = make_runtime(mode, **kwargs)
    rt.tracer = tracer
    rt.execute(make_tasks(n_tasks))
    return tracer


@pytest.mark.parametrize("mode", ["hybrid", "cpu", "gpu"])
def test_modes_obey_batching_contract(mode):
    tracer = traced_run(mode)
    assert tracer.log, "traced run produced no structured log records"
    verify_tracer(tracer)


def test_log_covers_all_work():
    n = 120
    tracer = traced_run("hybrid", n_tasks=n)
    submits = [r for r in tracer.log if r.op == "submit"]
    flushes = [r for r in tracer.log if r.op == "flush"]
    assert len(submits) == n
    assert sum(len(r.ids) for r in flushes) == n
    verify_tracer(tracer)


def test_blocks_transferred_at_most_once():
    tracer = traced_run("hybrid")
    transfers = [r for r in tracer.log if r.op == "block_transfer"]
    # make_tasks shares block tuples between items, so a correct run
    # ships each key exactly once and the write-once check has teeth
    assert transfers, "expected at least one block transfer in hybrid mode"
    keys = [k for r in transfers for k in r.ids]
    assert len(keys) == len(set(keys))
    verify_tracer(tracer)


def test_small_batches_still_consistent():
    tracer = traced_run(
        "hybrid", n_tasks=90, max_batch_size=7, flush_interval=0.0005
    )
    assert len([r for r in tracer.log if r.op == "flush"]) > 1
    verify_tracer(tracer)


def test_untraced_run_keeps_log_empty():
    rt = make_runtime("hybrid")
    rt.execute(make_tasks(40))
    assert rt.tracer is None


def test_corrupted_log_is_caught():
    """The checker is not vacuous: tampering with a real log trips it."""
    tracer = traced_run("hybrid", n_tasks=60)
    flush_idx = next(
        i for i, r in enumerate(tracer.log) if r.op == "flush" and r.ids
    )
    tracer.log.append(tracer.log[flush_idx])  # replay a flushed batch
    assert find_violations(tracer.log)


def test_gpu_compute_obeys_arrival_ordering():
    """Pipelined runs log kernel starts; the arrival check must hold on
    a real execution (no kernel reads a block before it arrived)."""
    tracer = traced_run("hybrid", n_tasks=150)
    computes = [r for r in tracer.log if r.op == "gpu_compute"]
    assert computes, "hybrid run logged no gpu_compute records"
    verify_tracer(tracer)


def test_arrival_violation_detected_on_tampered_log():
    """Back-dating a kernel start before its blocks arrived trips the
    arrival-ordering invariant — the checker has teeth on real logs."""
    from repro.runtime.trace import RuntimeLogRecord

    tracer = traced_run("hybrid", n_tasks=150)
    transfer = next(r for r in tracer.log if r.op == "block_transfer")
    tampered = list(tracer.log) + [
        RuntimeLogRecord(
            op="gpu_compute",
            at=transfer.at - 1e-6,
            kind="integral_compute",
            ids=transfer.ids,
        )
    ]
    # keep the log time-ordered so only the arrival check can fire
    tampered.sort(key=lambda r: r.at)
    assert any(
        "never arrived" in v or "transfer completes later" in v
        for v in find_violations(tampered)
    )
