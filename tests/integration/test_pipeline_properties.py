"""Property tests: pipelined execution preserves the batching contract.

Hypothesis drives randomized irregular task streams (mixed kinds, random
weights, random batching knobs) through the *pipelined* runtime and
asserts, via the happens-before log, that concurrency never loses,
duplicates, or reorders work items within a kind — the invariants
:mod:`repro.lint.trace_check` formalises.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.trace_check import find_violations
from repro.runtime.task import HybridTask, TaskKind, WorkItem
from repro.runtime.trace import Tracer
from tests.conftest import make_runtime

#: (q, rank) shapes — distinct q means a distinct TaskKind
_SHAPES = [(12, 20), (16, 40), (24, 60)]


def _task(shape_idx: int, weight: int, block_family: int) -> HybridTask:
    q, rank = _SHAPES[shape_idx]
    item = WorkItem(
        kind=TaskKind("integral_compute", (3, q)),
        flops=1_000_000 * (1 + weight),
        input_bytes=q**3 * 8,
        output_bytes=q**3 * 8,
        block_keys=tuple((block_family, mu) for mu in range(rank)),
        block_bytes=rank * q * q * 8,
        steps=rank * 3,
        step_rows=q * q,
        step_q=q,
    )
    return HybridTask(
        work=item, pre_bytes=item.input_bytes, post_bytes=item.output_bytes
    )


task_streams = st.lists(
    st.tuples(
        st.integers(0, len(_SHAPES) - 1),  # kind
        st.integers(0, 30),  # weight multiplier
        st.integers(0, 3),  # block family shared across tasks
    ),
    min_size=1,
    max_size=40,
)


@given(
    stream=task_streams,
    max_batch_size=st.integers(1, 12),
    flush_ms=st.sampled_from([0.5, 2.0, 8.0]),
)
@settings(max_examples=30, deadline=None)
def test_pipelined_run_never_loses_duplicates_or_reorders(
    stream, max_batch_size, flush_ms
):
    tasks = [_task(*spec) for spec in stream]
    tracer = Tracer()
    rt = make_runtime(
        "hybrid",
        max_batch_size=max_batch_size,
        flush_interval=flush_ms / 1e3,
    )
    rt.tracer = tracer
    tl = rt.execute(tasks)
    assert tl.n_cpu_items + tl.n_gpu_items == len(tasks)
    assert find_violations(tracer.log) == []


@given(stream=task_streams)
@settings(max_examples=15, deadline=None)
def test_pipelined_and_serialized_process_identical_work(stream):
    """Concurrency changes the clock, never the set of work performed."""
    results = []
    for pipelined in (True, False):
        rt = make_runtime("hybrid", max_batch_size=8)
        rt.pipelined = pipelined
        tl = rt.execute([_task(*spec) for spec in stream])
        results.append(
            (
                tl.n_cpu_items + tl.n_gpu_items,
                tl.bytes_from_gpu,
                tl.n_batches,
            )
        )
    assert results[0] == results[1]
