"""Recovery determinism: crashes must not change a single bit.

The headline guarantee of `repro.recovery`: with recovery enabled, any
seeded crash schedule (within the restart budget) yields accumulated
results *bit-identical* to the fault-free run — every lost window is
re-executed, nothing is dropped, nothing double-counts.  And recovery
that is armed but never fires leaves the fault-free timeline untouched.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro.apps.coulomb import probe_item
from repro.apps.workloads import SyntheticApplyWorkload
from repro.cluster.simulation import ClusterSimulation
from repro.dht.process_map import HashProcessMap
from repro.faults.injector import FaultInjector
from repro.faults.models import CheckpointCorruption, NodeCrash
from repro.kernels.base import FormulaPayload
from repro.lint.trace_check import verify_tracer
from repro.recovery import (
    CheckpointCostModel,
    EveryNBatches,
    FixedInterval,
    RecoveryConfig,
    run_with_recovery,
)
from repro.runtime.task import HybridTask
from repro.runtime.trace import Tracer
from tests.conftest import make_runtime

#: the payload workload's makespan is ~17 ms, so detection/restart
#: charges are scaled down to stay proportionate
COST = CheckpointCostModel(drain_gbps=4.0, restart_seconds=1e-4)
DETECT = 1e-4


def payload_tasks(n: int = 60, seed: int = 42) -> list[HybridTask]:
    proto = probe_item(2, 6, 3)
    rng = np.random.default_rng(seed)
    q, dim, rank = 12, 2, 3
    out = []
    for _ in range(n):
        payload = FormulaPayload(
            s=rng.standard_normal((q,) * dim),
            factors=[
                tuple(rng.standard_normal((q, q)) for _ in range(dim))
                for _ in range(rank)
            ],
            coeffs=rng.standard_normal(rank),
        )
        out.append(
            HybridTask(
                work=replace(proto, payload=payload),
                pre_bytes=proto.input_bytes,
                post_bytes=proto.output_bytes,
            )
        )
    return out


def factory():
    return make_runtime("hybrid", max_batch_size=20)


def collect_results(injector=None, policy=None):
    """Run under recovery and return results in task order."""
    tasks = payload_tasks()
    results: dict[int, np.ndarray] = {}
    for idx, t in enumerate(tasks):
        t.work.on_complete = (
            lambda out, i=idx: results.__setitem__(i, out)
        )
    tracer = Tracer()
    run = run_with_recovery(
        factory,
        tasks,
        config=RecoveryConfig(
            policy=policy or EveryNBatches(2),
            cost_model=COST,
            failure_detection_timeout=DETECT,
            max_restarts=6,
        ),
        injector=injector,
        tracer=tracer,
    )
    verify_tracer(tracer)
    assert len(results) == len(tasks)
    return run, [results[i] for i in range(len(tasks))], tracer


def trace_shape(tracer: Tracer):
    return [(r.op, r.at, r.kind, len(r.ids)) for r in tracer.log]


class TestBitIdenticalResults:
    def test_crash_schedule_reproduces_fault_free_bits(self):
        _, clean, _ = collect_results()
        base = factory().execute(payload_tasks()).total_seconds
        injector = FaultInjector(
            3,
            [
                NodeCrash(rank=0, at=0.35 * base),
                NodeCrash(rank=0, at=0.6 * base),
            ],
        )
        run, recovered, _ = collect_results(injector=injector)
        assert run.restarts == 2
        for a, b in zip(clean, recovered):
            assert a.tobytes() == b.tobytes()

    def test_corrupted_checkpoints_still_bit_identical(self):
        _, clean, _ = collect_results()
        base = factory().execute(payload_tasks()).total_seconds
        injector = FaultInjector(
            5,
            [
                NodeCrash(rank=0, at=0.6 * base),
                CheckpointCorruption(rate=1.0),
            ],
        )
        run, recovered, _ = collect_results(injector=injector)
        assert run.restarts == 1
        for a, b in zip(clean, recovered):
            assert a.tobytes() == b.tobytes()

    def test_same_seed_same_timeline(self):
        base = factory().execute(payload_tasks()).total_seconds
        def crashy():
            return FaultInjector(7, [NodeCrash(rank=0, at=0.5 * base)])

        run_a, _, tracer_a = collect_results(injector=crashy())
        run_b, _, tracer_b = collect_results(injector=crashy())
        assert run_a.timeline.total_seconds == run_b.timeline.total_seconds
        assert trace_shape(tracer_a) == trace_shape(tracer_b)


class TestArmedIdle:
    def test_node_armed_idle_makespan_identical(self):
        baseline = factory().execute(payload_tasks()).total_seconds
        run, _, _ = collect_results(policy=FixedInterval(math.inf))
        assert run.timeline.total_seconds == baseline

    def test_cluster_armed_idle_makespan_identical(self):
        workload = SyntheticApplyWorkload(
            dim=3, k=10, rank=60, n_tasks=240, n_tree_leaves=64, seed=5
        )

        def simulate(**kwargs):
            sim = ClusterSimulation(
                4, HashProcessMap(4), mode="hybrid", **kwargs
            )
            return sim.run(workload.tasks)

        plain = simulate()
        armed = simulate(
            recovery=RecoveryConfig(policy=EveryNBatches(2), cost_model=COST),
            fault_injector=FaultInjector(9),  # no crash scheduled
        )
        assert armed.makespan_seconds == plain.makespan_seconds
        assert armed.total_restarts == 0
