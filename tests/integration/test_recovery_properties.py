"""Property test: arbitrary seeded crash+corruption schedules are safe.

For any seeded combination of crash instants and checkpoint-corruption
rate (within the restart budget), recovery must deliver every item's
result exactly once and reproduce the fault-free numbers bit for bit —
the trace checker's recovery ledger (invariant #7) audits the same runs
independently.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import replace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.coulomb import probe_item
from repro.faults.injector import FaultInjector
from repro.faults.models import CheckpointCorruption, NodeCrash
from repro.kernels.base import FormulaPayload
from repro.lint.trace_check import verify_tracer
from repro.recovery import (
    CheckpointCostModel,
    EveryNBatches,
    RecoveryConfig,
    run_with_recovery,
)
from repro.runtime.task import HybridTask
from repro.runtime.trace import Tracer
from tests.conftest import make_runtime

N_TASKS = 40
COST = CheckpointCostModel(drain_gbps=4.0, restart_seconds=1e-4)


def payload_tasks() -> list[HybridTask]:
    proto = probe_item(2, 6, 3)
    rng = np.random.default_rng(1234)
    q, dim, rank = 10, 2, 3
    out = []
    for _ in range(N_TASKS):
        payload = FormulaPayload(
            s=rng.standard_normal((q,) * dim),
            factors=[
                tuple(rng.standard_normal((q, q)) for _ in range(dim))
                for _ in range(rank)
            ],
            coeffs=rng.standard_normal(rank),
        )
        out.append(
            HybridTask(
                work=replace(proto, payload=payload),
                pre_bytes=proto.input_bytes,
                post_bytes=proto.output_bytes,
            )
        )
    return out


def factory():
    return make_runtime("hybrid", max_batch_size=10)


def run_schedule(injector):
    tasks = payload_tasks()
    results: dict[int, bytes] = {}
    for idx, t in enumerate(tasks):
        t.work.on_complete = (
            lambda out, i=idx: results.__setitem__(i, out.tobytes())
        )
    tracer = Tracer()
    run = run_with_recovery(
        factory,
        tasks,
        config=RecoveryConfig(
            policy=EveryNBatches(2),
            cost_model=COST,
            failure_detection_timeout=1e-4,
            max_restarts=12,
        ),
        injector=injector,
        tracer=tracer,
    )
    verify_tracer(tracer)
    return run, results, tracer


_CLEAN: dict[int, bytes] = {}


def clean_results() -> dict[int, bytes]:
    if not _CLEAN:
        _, results, _ = run_schedule(None)
        _CLEAN.update(results)
    return _CLEAN


@given(
    seed=st.integers(0, 2**32 - 1),
    crash_fractions=st.lists(
        st.floats(0.05, 1.5, allow_nan=False), min_size=0, max_size=4
    ),
    corruption_rate=st.sampled_from([None, 0.4, 1.0]),
)
@settings(max_examples=25, deadline=None)
def test_any_schedule_accumulates_exactly_once(
    seed, crash_fractions, corruption_rate
):
    base = factory().execute(payload_tasks()).total_seconds
    faults = [
        NodeCrash(rank=0, at=f * base) for f in sorted(set(crash_fractions))
    ]
    if corruption_rate is not None:
        faults.append(CheckpointCorruption(rate=corruption_rate))
    injector = FaultInjector(seed, faults)

    run, results, tracer = run_schedule(injector)

    # every item delivered, bit-identical to the fault-free run
    assert len(results) == N_TASKS
    assert results == clean_results()
    # the trace's recovery ledger nets to exactly-once accumulation
    effective: Counter = Counter()
    for record in tracer.log:
        if record.op == "accumulate":
            effective.update(record.ids)
        elif record.op == "rollback":
            effective.subtract(record.ids)
    assert len(effective) == N_TASKS
    assert set(effective.values()) == {1}
    # the restart count is bounded by the schedule
    assert run.restarts <= len(faults)
