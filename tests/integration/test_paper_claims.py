"""Quantitative shape checks against the paper's headline claims.

These tests run the same machinery the benchmarks use, at reduced task
counts, and assert the *ratios* the paper reports (not absolute times —
see EXPERIMENTS.md for the full tables).
"""

import pytest

from repro.apps.coulomb import probe_item
from repro.apps.tdse import TdseApplication
from repro.apps.workloads import SyntheticApplyWorkload
from repro.cluster.simulation import ClusterSimulation
from repro.dht.process_map import CostPartitionMap, HashProcessMap
from repro.runtime.task import HybridTask
from tests.conftest import make_runtime


def coulomb_tasks(n, k=10, rank=100):
    item = probe_item(3, k, rank)
    return [
        HybridTask(work=item, pre_bytes=item.input_bytes, post_bytes=item.output_bytes)
        for _ in range(n)
    ]


def test_claim_cpu_16_thread_scaleup():
    """Table I: 132.5 s -> ~19 s from 1 to 16 threads (~6.7x)."""
    t1 = make_runtime("cpu", cpu_threads=1).execute(coulomb_tasks(600)).total_seconds
    t16 = make_runtime("cpu", cpu_threads=16).execute(coulomb_tasks(600)).total_seconds
    assert 6.0 < t1 / t16 < 7.6


def test_claim_gpu_stream_scaleup():
    """Table I: 71.3 s -> 24.3 s from 1 to 5 streams (~2.9x)."""
    t1 = make_runtime("gpu", gpu_streams=1).execute(coulomb_tasks(600)).total_seconds
    t5 = make_runtime("gpu", gpu_streams=5).execute(coulomb_tasks(600)).total_seconds
    assert 2.5 < t1 / t5 < 3.3


def test_claim_custom_kernel_beats_cublas_3d():
    """Abstract: 'a speedup of 2.2-times by using a custom CUDA kernel
    rather than a cuBLAS-based kernel' for small matrices."""
    custom = make_runtime("gpu", gpu_kernel="custom").execute(
        coulomb_tasks(600)
    ).total_seconds
    cublas = make_runtime("gpu", gpu_kernel="cublas").execute(
        coulomb_tasks(600)
    ).total_seconds
    assert 1.8 < cublas / custom < 3.2


def test_claim_hybrid_beats_both_pure_modes():
    """Table I: hybrid 14.4 s vs CPU 19.9 s and GPU 24.3 s."""
    times = {
        mode: make_runtime(mode).execute(coulomb_tasks(600)).total_seconds
        for mode in ("cpu", "gpu", "hybrid")
    }
    assert times["hybrid"] < times["cpu"]
    assert times["hybrid"] < times["gpu"]


def test_claim_hybrid_actual_close_to_optimal():
    """Table I: actual 14.4 vs optimal 12.1 — within ~25% of the bound."""
    from repro.analysis.overlap import analyze_overlap

    cpu = make_runtime("cpu", cpu_threads=10).execute(coulomb_tasks(600)).total_seconds
    gpu = make_runtime("gpu").execute(coulomb_tasks(600)).total_seconds
    hybrid = make_runtime("hybrid").execute(coulomb_tasks(600)).total_seconds
    a = analyze_overlap(cpu, gpu, hybrid)
    assert hybrid < 1.3 * a.optimal_seconds


@pytest.fixture(scope="module")
def tdse_workload():
    app = TdseApplication(n_tasks=20_000, n_tree_leaves=1024)
    return app.workload()


@pytest.fixture(scope="module")
def tdse_pmap_weights(tdse_workload):
    from collections import Counter

    return {k: float(v) for k, v in Counter(t.key for t in tdse_workload.tasks).items()}


def test_claim_tdse_hybrid_speedup(tdse_workload, tdse_pmap_weights):
    """Table VI: hybrid is ~2.3x the CPU-only version at scale."""
    nodes = 100
    pmap = CostPartitionMap.from_weights(nodes, tdse_pmap_weights, target_chunks=150)
    times = {}
    for mode, rr in (("cpu", True), ("hybrid", True)):
        sim = ClusterSimulation(
            nodes, pmap, mode=mode, gpu_kernel="cublas", rank_reduction=rr,
            flush_interval=0.03,
        )
        times[mode] = sim.run(tdse_workload.tasks).makespan_seconds
    speedup = times["cpu"] / times["hybrid"]
    # paper: 1.4-2.4 across 100-500 nodes; our cuBLAS model is somewhat
    # more favourable on 4-D shapes (see EXPERIMENTS.md)
    assert 1.8 < speedup < 3.9


def test_claim_gpu_scales_beyond_cpu_for_tdse(tdse_workload, tdse_pmap_weights):
    """Table VI: the GPU version keeps scaling where the CPU flattens."""
    pmap = CostPartitionMap.from_weights(100, tdse_pmap_weights, target_chunks=150)
    sim_gpu = ClusterSimulation(
        100, pmap, mode="gpu", gpu_kernel="cublas", flush_interval=0.03
    )
    sim_cpu = ClusterSimulation(
        100, pmap, mode="cpu", rank_reduction=True, flush_interval=0.03
    )
    gpu = sim_gpu.run(tdse_workload.tasks).makespan_seconds
    cpu = sim_cpu.run(tdse_workload.tasks).makespan_seconds
    assert 1.2 < cpu / gpu < 3.5  # paper: 1.1-1.9


def test_claim_scaling_is_sublinear_with_locality_map(
    tdse_workload, tdse_pmap_weights
):
    """Table VI: 5x nodes buys clearly less than 5x speed."""
    times = {}
    for nodes in (100, 500):
        pmap = CostPartitionMap.from_weights(
            nodes, tdse_pmap_weights, target_chunks=150
        )
        sim = ClusterSimulation(
            nodes, pmap, mode="hybrid", gpu_kernel="cublas", rank_reduction=True,
            flush_interval=0.03,
        )
        times[nodes] = sim.run(tdse_workload.tasks).makespan_seconds
    scaling = times[100] / times[500]
    assert 1.2 < scaling < 4.0  # paper: 2.4x


def test_claim_even_map_scales_linearly_small_partitions():
    """Tables III/IV used an even map exactly because it scales."""
    wl = SyntheticApplyWorkload(
        dim=3, k=10, rank=100, n_tasks=8000, n_tree_leaves=512, seed=3
    )
    times = {}
    for nodes in (2, 8):
        sim = ClusterSimulation(
            nodes, HashProcessMap(nodes), mode="gpu", gpu_kernel="custom",
            flush_interval=0.01,
        )
        times[nodes] = sim.run(wl.tasks).makespan_seconds
    assert 3.0 < times[2] / times[8] < 4.6  # ideal 4x
