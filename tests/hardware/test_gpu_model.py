"""Tests for the GPU timing model."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware.gpu_model import GpuModel
from repro.hardware.specs import TESTBED_GPU, TITAN_GPU


@pytest.fixture()
def model() -> GpuModel:
    return GpuModel(TITAN_GPU)


def test_sm_gflops(model):
    assert model.sm_gflops() == pytest.approx(665.0 / 16.0)


def test_stream_scaling_matches_table1(model):
    """Table I GPU column: 1/1.7/2.3/2.7/2.9x for 1..5 streams."""
    conc = [model.concurrency(s, 3) for s in range(1, 6)]
    assert conc[0] == pytest.approx(1.0)
    assert 1.6 < conc[1] < 1.9
    assert 2.6 < conc[4] < 3.2


def test_concurrency_capped_by_sm_reservation(model):
    """Instances reserving 8 SMs can never run more than 2 at once."""
    assert model.concurrency(16, 8) <= 2


def test_concurrency_validation(model):
    with pytest.raises(HardwareModelError):
        model.concurrency(0, 2)
    with pytest.raises(HardwareModelError):
        model.concurrency(4, 0)
    with pytest.raises(HardwareModelError):
        model.concurrency(4, 99)


def test_gemm_utilization_grows_with_size(model):
    small = model.gemm_utilization(400, 20, 20)
    large = model.gemm_utilization(21952, 28, 28)
    assert small < large < model.gemm_peak_fraction


def test_gemm_utilization_skinny_penalty(model):
    """Same output size, shorter inner dimension -> lower utilisation."""
    thin = model.gemm_utilization(8000, 20, 10)
    thick = model.gemm_utilization(8000, 20, 100)
    assert thin < thick


def test_gemm_seconds_includes_overheads(model):
    t = model.gemm_seconds(1, 1, 1)
    assert t > model.spec.kernel_launch_seconds + model.cublas_call_overhead


def test_gemm_large_matrices_reach_high_rate(model):
    """4-D TDSE shapes: cuBLAS approaches a good fraction of peak."""
    rows, q = 28**3, 28
    t = model.gemm_seconds(rows, q, q)
    gflops = 2.0 * rows * q * q / t / 1e9
    assert gflops > 50.0


def test_fused_efficiency_grows_with_q(model):
    assert model.fused_efficiency(10) < model.fused_efficiency(28)


def test_fused_efficiency_shared_fit_penalty(model):
    assert model.fused_efficiency(20, shared_fit=0.2) < model.fused_efficiency(20)


def test_fused_instance_calibration(model):
    """One instance of the paper's k=10 batch element sustains ~11 GFLOPS
    (Table I: one stream, 71.3 s for the whole app)."""
    q, rank, dim = 20, 100, 3
    steps = rank * dim
    flops = steps * 2 * (q**2) * q * q
    t = model.fused_instance_seconds(flops, steps, 3, q=q)
    gflops = flops / t / 1e9
    assert 8.0 < gflops < 15.0


def test_fused_validation(model):
    with pytest.raises(HardwareModelError):
        model.fused_instance_seconds(-1, 1, 2, q=10)
    with pytest.raises(HardwareModelError):
        model.fused_efficiency(0)
    with pytest.raises(HardwareModelError):
        model.fused_efficiency(10, shared_fit=0.0)


def test_gtx480_slower_than_m2090():
    titan = GpuModel(TITAN_GPU)
    testbed = GpuModel(TESTBED_GPU)
    q, steps = 20, 300
    flops = steps * 2 * q**4
    assert testbed.fused_instance_seconds(
        flops, steps, 3, q=q
    ) > titan.fused_instance_seconds(flops, steps, 3, q=q)


def test_gemm_shape_validation(model):
    with pytest.raises(HardwareModelError):
        model.gemm_utilization(0, 5)
