"""Property-based sanity of the hardware cost models.

Cost models are hand-calibrated; these properties pin down the
monotonicities that must hold regardless of the constants, so future
re-calibration cannot silently break the physics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cpu_model import CpuModel
from repro.hardware.gpu_model import GpuModel
from repro.hardware.specs import TITAN_CPU, TITAN_GPU

cpu = CpuModel(TITAN_CPU)
gpu = GpuModel(TITAN_GPU)

flops_st = st.integers(1, 10**12)
threads_st = st.integers(1, 16)
ws_st = st.integers(0, 1 << 28)


@given(flops_st, flops_st, threads_st, ws_st)
@settings(max_examples=60, deadline=None)
def test_cpu_more_flops_never_faster(f1, f2, threads, ws):
    lo, hi = sorted((f1, f2))
    assert cpu.compute_seconds(lo, threads, ws) <= cpu.compute_seconds(
        hi, threads, ws
    )


@given(flops_st, st.integers(1, 15), ws_st)
@settings(max_examples=60, deadline=None)
def test_cpu_more_threads_never_slower(flops, threads, ws):
    assert cpu.compute_seconds(flops, threads + 1, ws) <= cpu.compute_seconds(
        flops, threads, ws
    ) * (1 + 1e-12)


@given(flops_st, threads_st)
@settings(max_examples=60, deadline=None)
def test_cpu_cache_overflow_never_faster(flops, threads):
    small = cpu.compute_seconds(flops, threads, 1 << 20)
    big = cpu.compute_seconds(flops, threads, 1 << 28)
    assert big >= small


@given(st.integers(1, 100_000), st.integers(1, 64), st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_gemm_utilization_bounded(rows, cols, inner):
    util = gpu.gemm_utilization(rows, cols, inner)
    assert 0.0 < util <= gpu.gemm_peak_fraction


@given(st.integers(1, 50_000), st.integers(2, 64))
@settings(max_examples=60, deadline=None)
def test_gemm_bigger_inner_never_less_utilized(rows, inner):
    assert gpu.gemm_utilization(rows, inner, inner) >= gpu.gemm_utilization(
        rows, inner, inner - 1
    ) - 1e-12


@given(st.integers(1, 15), st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_gpu_more_streams_never_less_concurrent(streams, sm_per):
    assert gpu.concurrency(streams + 1, sm_per) >= gpu.concurrency(
        streams, sm_per
    ) - 1e-12


@given(st.integers(1, 10**10), st.integers(0, 500), st.integers(1, 3),
       st.integers(2, 60))
@settings(max_examples=60, deadline=None)
def test_fused_instance_time_positive_and_monotone(flops, steps, sm_per, q):
    t1 = gpu.fused_instance_seconds(flops, steps, sm_per, q=q)
    t2 = gpu.fused_instance_seconds(flops * 2, steps, sm_per, q=q)
    assert 0 < t1 <= t2


@given(st.integers(2, 60))
@settings(max_examples=30, deadline=None)
def test_fused_efficiency_monotone_in_q(q):
    assert gpu.fused_efficiency(q) <= gpu.fused_efficiency(q + 1)
