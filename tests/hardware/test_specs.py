"""Tests for hardware specifications."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware.specs import (
    CpuSpec,
    GpuSpec,
    PcieSpec,
    TESTBED_GPU,
    TITAN_CPU,
    TITAN_GPU,
    TITAN_NODE,
)


def test_titan_node_matches_paper():
    """Section III: 16-core Opteron 6200 + Tesla M2090 (Fermi), 6 GB."""
    assert TITAN_CPU.cores == 16
    assert TITAN_CPU.mtxm_gflops_core == pytest.approx(6.0)  # paper's figure
    assert TITAN_CPU.l2_total_bytes == 16 << 20  # "aggregate size of L2"
    assert TITAN_GPU.n_sm == 16
    assert TITAN_GPU.ram_bytes == 6 << 30
    assert TITAN_NODE.cpu is TITAN_CPU


def test_testbed_gtx480_is_dp_throttled():
    """Consumer Fermi runs DP at 1/8 SP: far below the Tesla M2090."""
    assert TESTBED_GPU.peak_dp_gflops < TITAN_GPU.peak_dp_gflops / 2
    assert TESTBED_GPU.n_sm == 15


def test_pcie_constants_from_paper():
    p = PcieSpec()
    assert p.page_lock_seconds == pytest.approx(0.5e-3)
    assert p.page_unlock_seconds == pytest.approx(2.0e-3)
    assert p.pinned_bytes_per_second >= 2 * p.pageable_bytes_per_second


def test_cpu_spec_validation():
    with pytest.raises(HardwareModelError):
        CpuSpec(name="bad", cores=0, mtxm_gflops_core=6.0, l2_total_bytes=1)
    with pytest.raises(HardwareModelError):
        CpuSpec(name="bad", cores=4, mtxm_gflops_core=-1.0, l2_total_bytes=1)


def test_gpu_spec_validation():
    with pytest.raises(HardwareModelError):
        GpuSpec(name="bad", n_sm=0, peak_dp_gflops=100.0)


def test_pcie_validation():
    with pytest.raises(HardwareModelError):
        PcieSpec(pinned_bytes_per_second=1.0, pageable_bytes_per_second=2.0)
