"""Tests for the CPU timing model."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware.cpu_model import CpuModel
from repro.hardware.specs import TITAN_CPU

SMALL_WS = 1 << 20  # 1 MB: cache resident
BIG_WS = 64 << 20  # 64 MB: overflows the 16 MB aggregate L2


@pytest.fixture()
def model() -> CpuModel:
    return CpuModel(TITAN_CPU)


def test_single_core_rate_is_paper_value(model):
    """1 GFLOP at 6 GFLOPS -> 1/6 s."""
    t = model.compute_seconds(1_000_000_000, 1, SMALL_WS)
    assert t == pytest.approx(1.0 / 6.0)


def test_sixteen_thread_scaling_matches_table1(model):
    """Table I: 132.5 s -> 19.9 s is ~6.7x."""
    speedup = model.effective_parallelism(16, SMALL_WS)
    assert 6.0 < speedup < 7.5


def test_scaling_is_monotone(model):
    pars = [model.effective_parallelism(t, SMALL_WS) for t in range(1, 17)]
    assert all(b >= a for a, b in zip(pars, pars[1:]))


def test_two_threads_nearly_double(model):
    assert model.effective_parallelism(2, SMALL_WS) > 1.8


def test_oversize_working_set_caps_threads(model):
    """The paper: 'saturated by 10 threads' when the working set exceeds
    the 16 MB aggregate L2."""
    par16 = model.effective_parallelism(16, BIG_WS)
    assert par16 <= TITAN_CPU.oversize_thread_cap
    # and the per-core rate is degraded as well
    assert model.core_gflops(BIG_WS) < model.core_gflops(SMALL_WS)


def test_oversize_slower_than_cached(model):
    flops = 10_000_000_000
    assert model.compute_seconds(flops, 16, BIG_WS) > model.compute_seconds(
        flops, 16, SMALL_WS
    )


def test_data_seconds_bandwidth_term(model):
    t = model.data_seconds(TITAN_CPU.copy_bandwidth)  # exactly one second of bytes
    assert t == pytest.approx(1.0)


def test_data_seconds_per_item_overhead(model):
    base = model.data_seconds(0, n_items=0)
    with_items = model.data_seconds(0, n_items=1000)
    assert with_items > base


def test_invalid_inputs(model):
    with pytest.raises(HardwareModelError):
        model.compute_seconds(-1, 4, SMALL_WS)
    with pytest.raises(HardwareModelError):
        model.effective_parallelism(0, SMALL_WS)
    with pytest.raises(HardwareModelError):
        model.effective_parallelism(17, SMALL_WS)
    with pytest.raises(HardwareModelError):
        model.data_seconds(-5)
