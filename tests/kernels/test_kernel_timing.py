"""Timing-model behaviour of the three kernels (the paper's regimes)."""

import pytest

from repro.hardware.cpu_model import CpuModel
from repro.hardware.gpu_model import GpuModel
from repro.hardware.specs import TITAN_NODE
from repro.kernels.cpu_kernel import CpuMtxmKernel
from repro.kernels.cublas_gpu import CublasKernel
from repro.kernels.custom_gpu import CustomGpuKernel, sm_per_instance_for
from repro.runtime.task import BatchStats, TaskKind, WorkItem


def batch(n, *, q, dim, rank):
    steps = rank * dim
    rows = q ** (dim - 1)
    flops = steps * 2 * rows * q * q
    items = [
        WorkItem(
            kind=TaskKind("t", 0),
            flops=flops,
            input_bytes=q**dim * 8,
            output_bytes=q**dim * 8,
            steps=steps,
            step_rows=rows,
            step_q=q,
        )
        for _ in range(n)
    ]
    return BatchStats.of(items)


@pytest.fixture()
def gm():
    return GpuModel(TITAN_NODE.gpu)


@pytest.fixture()
def cm():
    return CpuModel(TITAN_NODE.cpu)


def test_sm_reservation_is_2_or_3_for_3d():
    """The paper: 'for small 3-D tensors the custom CUDA kernels use only
    two or three SMs'."""
    for q in (12, 20, 28):
        sm = sm_per_instance_for(q * q, q, 48 << 10)
        assert sm in (2, 3), q


def test_custom_beats_cublas_small_3d(gm):
    """Tables III/IV: 1.4-2.8x for the k=10 Coulomb batches."""
    stats = batch(60, q=20, dim=3, rank=100)
    custom = CustomGpuKernel(gm).batch_timing(stats, 5).seconds
    cublas = CublasKernel(gm).batch_timing(stats, 5).seconds
    assert 1.4 < cublas / custom < 3.5


def test_cublas_beats_custom_large_4d(gm):
    """Table VI regime: 4-D k=14 tensors (q=28) favour cuBLAS."""
    stats = batch(20, q=28, dim=4, rank=100)
    custom = CustomGpuKernel(gm).batch_timing(stats, 5).seconds
    cublas = CublasKernel(gm).batch_timing(stats, 5).seconds
    assert cublas < custom


def test_custom_kernel_launches_once_per_task(gm):
    stats = batch(60, q=20, dim=3, rank=100)
    timing = CustomGpuKernel(gm).batch_timing(stats, 5)
    assert timing.launches == 60


def test_cublas_launches_once_per_step(gm):
    stats = batch(60, q=20, dim=3, rank=100)
    timing = CublasKernel(gm).batch_timing(stats, 5)
    assert timing.launches == 60 * 300


def test_custom_kernel_stream_scaling(gm):
    stats = batch(60, q=20, dim=3, rank=100)
    t1 = CustomGpuKernel(gm).batch_timing(stats, 1).seconds
    t5 = CustomGpuKernel(gm).batch_timing(stats, 5).seconds
    assert 2.5 < t1 / t5 < 3.3  # Table I measures ~2.9


def test_cublas_streams_do_not_help(gm):
    stats = batch(60, q=20, dim=3, rank=100)
    t1 = CublasKernel(gm).batch_timing(stats, 1).seconds
    t5 = CublasKernel(gm).batch_timing(stats, 5).seconds
    assert t1 == pytest.approx(t5)


def test_rank_reduction_speeds_up_cpu_only(cm, gm):
    """Section II-D: rank reduction helps the CPU, not the GPU."""
    stats = batch(60, q=60, dim=3, rank=100)
    cpu_full = CpuMtxmKernel(cm).batch_timing(stats, 16).seconds
    cpu_red = CpuMtxmKernel(cm, rank_reduction=True).batch_timing(stats, 16).seconds
    assert 1.8 < cpu_full / cpu_red < 2.6  # "up to 2.5-times in typical cases"
    gpu = CustomGpuKernel(gm)
    assert gpu.batch_timing(stats, 5).seconds == gpu.batch_timing(stats, 5).seconds


def test_cpu_starvation_small_batches(cm):
    """A 4-item batch cannot use 16 threads (one task = one thread)."""
    small = batch(4, q=28, dim=4, rank=100)
    big = batch(64, q=28, dim=4, rank=100)
    t_small = CpuMtxmKernel(cm).batch_timing(small, 16).seconds
    t_big = CpuMtxmKernel(cm).batch_timing(big, 16).seconds
    # per-task time is much worse for the starved batch
    assert (t_small / 4) > 2.0 * (t_big / 64)


def test_cpu_cache_regime_change(cm):
    """k=10 batches fit in L2; k=30 batches do not (Table V's regime)."""
    small = batch(60, q=20, dim=3, rank=100)
    large = batch(60, q=60, dim=3, rank=100)
    kernel = CpuMtxmKernel(cm)
    gf_small = small.flops / kernel.batch_timing(small, 16).seconds / 1e9
    gf_large = large.flops / kernel.batch_timing(large, 16).seconds / 1e9
    assert gf_large < gf_small


def test_empty_batch_zero_time(gm, cm):
    empty = BatchStats.of([])
    assert CustomGpuKernel(gm).batch_timing(empty, 5).seconds == 0.0
    assert CublasKernel(gm).batch_timing(empty, 5).seconds == 0.0


def test_shared_fit_penalty_4d(gm):
    """4-D operands overflow shared memory; 3-D ones mostly fit."""
    kernel = CustomGpuKernel(gm)
    fit_3d = kernel.shared_fit(20 * 20, 20, 3)
    fit_4d = kernel.shared_fit(28 * 28 * 28, 28, 3)
    assert fit_4d < fit_3d <= 1.0
