"""Tests for the write-once GPU block cache."""

import pytest

from repro.errors import HardwareModelError
from repro.kernels.gpu_cache import GpuBlockCache


def test_first_transfer_ships_everything():
    cache = GpuBlockCache(1 << 20)
    shipped = cache.bytes_to_transfer(["a", "b", "c"], 100.0)
    assert shipped == 300
    assert cache.resident_bytes == 300
    assert len(cache) == 3


def test_second_transfer_is_free():
    cache = GpuBlockCache(1 << 20)
    cache.bytes_to_transfer(["a", "b"], 100.0)
    shipped = cache.bytes_to_transfer(["a", "b"], 100.0)
    assert shipped == 0
    assert cache.stats.hits == 2


def test_partial_overlap():
    cache = GpuBlockCache(1 << 20)
    cache.bytes_to_transfer(["a"], 100.0)
    shipped = cache.bytes_to_transfer(["a", "b"], 100.0)
    assert shipped == 100
    assert "b" in cache


def test_duplicate_keys_in_one_batch_count_once():
    cache = GpuBlockCache(1 << 20)
    shipped = cache.bytes_to_transfer(["a", "a", "a"], 100.0)
    assert shipped == 100


def test_capacity_overflow_raises():
    cache = GpuBlockCache(250)
    cache.bytes_to_transfer(["a", "b"], 100.0)
    with pytest.raises(HardwareModelError):
        cache.bytes_to_transfer(["c"], 100.0)


def test_invalid_capacity():
    with pytest.raises(HardwareModelError):
        GpuBlockCache(0)


# -- two-phase transfer protocol (the pipelined runtime's API) ----------------


def test_begin_does_not_grant_residency():
    cache = GpuBlockCache(1 << 20)
    ticket = cache.begin_transfer(["a", "b"], 100.0)
    assert ticket.ship_keys == ("a", "b")
    assert "a" not in cache
    assert cache.in_flight("a")
    assert cache.resident_bytes == 0
    assert cache.reserved_bytes == 200


def test_commit_grants_residency():
    cache = GpuBlockCache(1 << 20)
    ticket = cache.begin_transfer(["a", "b"], 100.0)
    cache.commit_transfer(ticket)
    assert "a" in cache and "b" in cache
    assert not cache.in_flight("a")
    assert cache.resident_bytes == 200
    assert cache.reserved_bytes == 0
    assert cache.stats.bytes_inserted == 200


def test_concurrent_batch_waits_instead_of_hitting():
    """Regression for the TOCTOU race: while a transfer is in flight a
    second batch must see its blocks as waits, not as resident hits."""
    cache = GpuBlockCache(1 << 20)
    first = cache.begin_transfer(["a", "b"], 100.0)
    second = cache.begin_transfer(["a", "c"], 100.0)
    assert second.wait_keys == ("a",)
    assert second.hit_keys == ()
    assert second.ship_keys == ("c",)
    assert second.bytes_to_ship == 100
    cache.commit_transfer(first)
    third = cache.begin_transfer(["a"], 100.0)
    assert third.hit_keys == ("a",)


def test_commit_of_foreign_ticket_raises():
    from repro.kernels.gpu_cache import TransferTicket

    cache = GpuBlockCache(1 << 20)
    bogus = TransferTicket(("x",), (), (), 100)
    with pytest.raises(HardwareModelError):
        cache.commit_transfer(bogus)


def test_reserved_bytes_count_against_capacity():
    """Two overlapping transfers cannot jointly overflow the device."""
    cache = GpuBlockCache(250)
    cache.begin_transfer(["a", "b"], 100.0)  # not committed yet
    with pytest.raises(HardwareModelError):
        cache.begin_transfer(["c"], 100.0)


def test_stats_count_unique_keys_consistently():
    """Regression: hits used to count per occurrence while misses counted
    per unique key, skewing every derived hit rate."""
    cache = GpuBlockCache(1 << 20)
    cache.bytes_to_transfer(["a", "a", "b"], 100.0)
    assert cache.stats.misses == 2
    assert cache.stats.hits == 0
    cache.bytes_to_transfer(["a", "b", "b", "c"], 100.0)
    assert cache.stats.misses == 3
    assert cache.stats.hits == 2
    assert cache.stats.waits == 0
    assert cache.stats.accesses == 5
    assert cache.stats.bytes_inserted == 300


# -- faulted transfers: abort_transfer ---------------------------------------------


def test_abort_releases_in_flight_and_reservation():
    cache = GpuBlockCache(1 << 20)
    ticket = cache.begin_transfer(["a", "b"], 100.0)
    cache.abort_transfer(ticket)
    assert not cache.in_flight("a") and not cache.in_flight("b")
    assert "a" not in cache and "b" not in cache  # no phantom residency
    assert cache.reserved_bytes == 0
    assert cache.resident_bytes == 0
    assert cache.stats.aborts == 2
    assert cache.stats.bytes_inserted == 0


def test_aborted_keys_reship_as_fresh_misses():
    cache = GpuBlockCache(1 << 20)
    cache.abort_transfer(cache.begin_transfer(["a"], 100.0))
    retry = cache.begin_transfer(["a"], 100.0)
    assert retry.ship_keys == ("a",)  # a waiter is not stuck forever
    assert retry.wait_keys == ()
    cache.commit_transfer(retry)
    assert "a" in cache


def test_abort_frees_capacity_for_other_batches():
    cache = GpuBlockCache(250)
    first = cache.begin_transfer(["a", "b"], 100.0)
    with pytest.raises(HardwareModelError):
        cache.begin_transfer(["c"], 100.0)
    cache.abort_transfer(first)
    cache.begin_transfer(["c"], 100.0)  # reservation released


def test_abort_of_committed_ticket_raises():
    cache = GpuBlockCache(1 << 20)
    ticket = cache.begin_transfer(["a"], 100.0)
    cache.commit_transfer(ticket)
    with pytest.raises(HardwareModelError):
        cache.abort_transfer(ticket)


def test_double_abort_raises():
    cache = GpuBlockCache(1 << 20)
    ticket = cache.begin_transfer(["a"], 100.0)
    cache.abort_transfer(ticket)
    with pytest.raises(HardwareModelError):
        cache.abort_transfer(ticket)


def test_abort_with_no_ship_keys_is_noop():
    cache = GpuBlockCache(1 << 20)
    cache.commit_transfer(cache.begin_transfer(["a"], 100.0))
    hit_only = cache.begin_transfer(["a"], 100.0)
    assert hit_only.ship_keys == ()
    cache.abort_transfer(hit_only)  # nothing in flight, nothing to undo
    assert "a" in cache
    assert cache.stats.aborts == 0
