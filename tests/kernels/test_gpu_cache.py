"""Tests for the write-once GPU block cache."""

import pytest

from repro.errors import HardwareModelError
from repro.kernels.gpu_cache import GpuBlockCache


def test_first_transfer_ships_everything():
    cache = GpuBlockCache(1 << 20)
    shipped = cache.bytes_to_transfer(["a", "b", "c"], 100.0)
    assert shipped == 300
    assert cache.resident_bytes == 300
    assert len(cache) == 3


def test_second_transfer_is_free():
    cache = GpuBlockCache(1 << 20)
    cache.bytes_to_transfer(["a", "b"], 100.0)
    shipped = cache.bytes_to_transfer(["a", "b"], 100.0)
    assert shipped == 0
    assert cache.stats.hits == 2


def test_partial_overlap():
    cache = GpuBlockCache(1 << 20)
    cache.bytes_to_transfer(["a"], 100.0)
    shipped = cache.bytes_to_transfer(["a", "b"], 100.0)
    assert shipped == 100
    assert "b" in cache


def test_duplicate_keys_in_one_batch_count_once():
    cache = GpuBlockCache(1 << 20)
    shipped = cache.bytes_to_transfer(["a", "a", "a"], 100.0)
    assert shipped == 100


def test_capacity_overflow_raises():
    cache = GpuBlockCache(250)
    cache.bytes_to_transfer(["a", "b"], 100.0)
    with pytest.raises(HardwareModelError):
        cache.bytes_to_transfer(["c"], 100.0)


def test_invalid_capacity():
    with pytest.raises(HardwareModelError):
        GpuBlockCache(0)
