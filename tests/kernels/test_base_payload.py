"""FormulaPayload and KernelTiming edge cases."""

import numpy as np
import pytest

from repro.errors import TensorShapeError
from repro.kernels.base import FormulaPayload, KernelTiming, evaluate_formula


def test_payload_validates_rank_consistency():
    with pytest.raises(TensorShapeError):
        FormulaPayload(
            s=np.zeros((3, 3)),
            factors=[(np.eye(3), np.eye(3))],
            coeffs=np.ones(2),
        )


def test_payload_properties():
    p = FormulaPayload(
        s=np.zeros((4, 4, 4)),
        factors=[tuple(np.eye(4) for _ in range(3))],
        coeffs=np.ones(1),
    )
    assert p.rank == 1
    assert p.dim == 3


def test_evaluate_formula_zero_rank():
    p = FormulaPayload(s=np.ones((3, 3)), factors=[], coeffs=np.zeros(0))
    out = evaluate_formula(p)
    assert np.all(out == 0.0)
    assert out.shape == (3, 3)


def test_evaluate_formula_identity_factors():
    rng = np.random.default_rng(0)
    s = rng.standard_normal((5, 5))
    p = FormulaPayload(
        s=s, factors=[(np.eye(5), np.eye(5))], coeffs=np.array([2.0])
    )
    assert np.allclose(evaluate_formula(p), 2.0 * s)


def test_kernel_timing_gflops():
    t = KernelTiming(seconds=0.5, flops=10**9, launches=1)
    assert t.gflops() == pytest.approx(2.0)
    assert KernelTiming(seconds=0.0, flops=1, launches=0).gflops() == 0.0


def test_einsum_path_cache_reused():
    from repro.kernels.base import _EINSUM_PATHS

    rng = np.random.default_rng(1)
    p = FormulaPayload(
        s=rng.standard_normal((4, 4)),
        factors=[(rng.standard_normal((4, 4)), rng.standard_normal((4, 4)))],
        coeffs=np.ones(1),
    )
    evaluate_formula(p)
    n_before = len(_EINSUM_PATHS)
    evaluate_formula(p)
    assert len(_EINSUM_PATHS) == n_before  # same shape -> cached path
