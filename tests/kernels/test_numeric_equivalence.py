"""All three kernels must produce identical numbers — only timing differs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cpu_model import CpuModel
from repro.hardware.gpu_model import GpuModel
from repro.hardware.specs import TITAN_NODE
from repro.kernels.base import FormulaPayload, evaluate_formula
from repro.kernels.cpu_kernel import CpuMtxmKernel
from repro.kernels.cublas_gpu import CublasKernel
from repro.kernels.custom_gpu import CustomGpuKernel
from repro.runtime.task import TaskKind, WorkItem


def payload_item(seed: int, dim: int = 2, q: int = 6, rank: int = 3) -> WorkItem:
    rng = np.random.default_rng(seed)
    payload = FormulaPayload(
        s=rng.standard_normal((q,) * dim),
        factors=[
            tuple(rng.standard_normal((q, q)) for _ in range(dim))
            for _ in range(rank)
        ],
        coeffs=rng.standard_normal(rank),
    )
    return WorkItem(kind=TaskKind("t", 0), payload=payload)


def all_kernels():
    return [
        CpuMtxmKernel(CpuModel(TITAN_NODE.cpu)),
        CpuMtxmKernel(CpuModel(TITAN_NODE.cpu), rank_reduction=True,
                      reduction_tol=1e-14),
        CustomGpuKernel(GpuModel(TITAN_NODE.gpu)),
        CublasKernel(GpuModel(TITAN_NODE.gpu)),
    ]


@pytest.mark.parametrize("dim", [1, 2, 3])
def test_kernels_agree_with_reference(dim):
    item = payload_item(7, dim=dim)
    reference = item.payload.reference_result()
    for kernel in all_kernels():
        out = kernel.run_item(item)
        assert np.allclose(out, reference, atol=1e-10), kernel.name


def test_fast_evaluator_matches_reference():
    item = payload_item(11, dim=3, q=5, rank=4)
    assert np.allclose(
        evaluate_formula(item.payload), item.payload.reference_result(), atol=1e-11
    )


@given(st.integers(0, 10_000), st.integers(1, 3), st.integers(2, 6), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_equivalence_property(seed, dim, q, rank):
    item = payload_item(seed, dim=dim, q=q, rank=rank)
    reference = item.payload.reference_result()
    custom = CustomGpuKernel(GpuModel(TITAN_NODE.gpu)).run_item(item)
    cublas = CublasKernel(GpuModel(TITAN_NODE.gpu)).run_item(item)
    cpu = CpuMtxmKernel(CpuModel(TITAN_NODE.cpu)).run_item(item)
    for out in (custom, cublas, cpu):
        assert np.allclose(out, reference, atol=1e-9)


def test_rank_reduced_cpu_close_but_cheaper():
    """With decaying factors, the rank-reduced path matches within
    tolerance while multiplying less."""
    rng = np.random.default_rng(3)
    q, dim, rank = 10, 2, 3
    scale = 0.2 ** np.arange(q)
    factors = [
        tuple(rng.standard_normal((q, q)) * np.outer(scale, scale) for _ in range(dim))
        for _ in range(rank)
    ]
    payload = FormulaPayload(
        s=rng.standard_normal((q,) * dim),
        factors=factors,
        coeffs=np.ones(rank),
    )
    item = WorkItem(kind=TaskKind("t", 0), payload=payload)
    full = CpuMtxmKernel(CpuModel(TITAN_NODE.cpu)).run_item(item)
    reduced = CpuMtxmKernel(
        CpuModel(TITAN_NODE.cpu), rank_reduction=True, reduction_tol=1e-8
    ).run_item(item)
    assert np.allclose(full, reduced, atol=1e-5)


def test_cost_only_items_return_none():
    item = WorkItem(kind=TaskKind("t", 0), flops=100)
    for kernel in all_kernels():
        assert kernel.run_item(item) is None


def test_wrong_payload_type_rejected():
    item = WorkItem(kind=TaskKind("t", 0), payload="garbage")
    for kernel in all_kernels():
        with pytest.raises(TypeError):
            kernel.run_item(item)
