"""Tests for the Kepler / CUDA 5 future-work path (paper Sections II-D, VI).

"Rank reduction was also implemented for the custom CUDA kernel, but did
not have a noticeable effect on performance" — on Fermi.  "The dynamic
parallelism featured in the future CUDA 5 release could help alleviate
some of the rank reduction issues on GPUs."
"""

import pytest

from repro.hardware.gpu_model import GpuModel
from repro.hardware.specs import KEPLER_GPU, KEPLER_NODE, TITAN_GPU
from repro.kernels.custom_gpu import CustomGpuKernel
from tests.kernels.test_kernel_timing import batch


def test_kepler_spec():
    assert KEPLER_GPU.dynamic_parallelism
    assert not TITAN_GPU.dynamic_parallelism
    assert KEPLER_GPU.peak_dp_gflops > TITAN_GPU.peak_dp_gflops
    assert KEPLER_NODE.gpu is KEPLER_GPU


def test_rank_reduction_is_noop_on_fermi():
    """Exactly the paper's measurement: no timing change on the M2090."""
    stats = batch(60, q=20, dim=3, rank=100)
    gm = GpuModel(TITAN_GPU)
    plain = CustomGpuKernel(gm).batch_timing(stats, 5).seconds
    reduced = CustomGpuKernel(gm, rank_reduction=True).batch_timing(stats, 5).seconds
    assert reduced == pytest.approx(plain)


def test_rank_reduction_pays_off_on_kepler():
    """The future-work claim: dynamic parallelism unlocks the saving."""
    stats = batch(60, q=20, dim=3, rank=100)
    gm = GpuModel(KEPLER_GPU)
    plain = CustomGpuKernel(gm).batch_timing(stats, 5).seconds
    reduced = CustomGpuKernel(gm, rank_reduction=True).batch_timing(stats, 5).seconds
    assert 1.6 < plain / reduced < 2.4  # bounded by the CPU's ~2.2x


def test_kepler_faster_than_fermi_at_same_workload():
    stats = batch(60, q=20, dim=3, rank=100)
    fermi = CustomGpuKernel(GpuModel(TITAN_GPU)).batch_timing(stats, 5).seconds
    kepler = CustomGpuKernel(GpuModel(KEPLER_GPU)).batch_timing(stats, 5).seconds
    assert kepler < fermi
