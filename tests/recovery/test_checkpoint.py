"""Snapshot cost model, lineage store, and the Checkpointer driver."""

from types import SimpleNamespace

import pytest

from repro.errors import RecoveryConfigError
from repro.faults.injector import FaultInjector
from repro.faults.models import CheckpointCorruption
from repro.recovery import (
    Checkpoint,
    CheckpointCostModel,
    CheckpointStore,
    Checkpointer,
    EveryNBatches,
    FixedInterval,
)


def item(n_bytes: int = 100):
    return SimpleNamespace(output_bytes=n_bytes)


def ck(seq, parent, *, ids=(), state_bytes=0, corrupted=False, at=0.0):
    return Checkpoint(
        rank=0,
        seq=seq,
        parent=parent,
        at=at,
        cursor=len(ids),
        item_ids=tuple(ids),
        state_bytes=state_bytes,
        corrupted=corrupted,
    )


class TestCostModel:
    def test_write_is_serialize_plus_drain(self):
        model = CheckpointCostModel(
            serialize_gbps=1.0,
            drain_gbps=0.5,
            write_latency_seconds=0.01,
        )
        n = 10**9
        assert model.serialize_seconds(n) == pytest.approx(1.0)
        assert model.drain_seconds(n) == pytest.approx(2.01)
        assert model.write_seconds(n) == pytest.approx(3.01)

    def test_read_pays_the_reverse_path(self):
        model = CheckpointCostModel(
            serialize_gbps=1.0,
            drain_gbps=0.5,
            read_latency_seconds=0.02,
        )
        assert model.read_seconds(10**9) == pytest.approx(3.02)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"serialize_gbps": 0.0},
            {"drain_gbps": -1.0},
            {"write_latency_seconds": -1e-3},
            {"restart_seconds": -1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(RecoveryConfigError):
            CheckpointCostModel(**kwargs)


class TestCheckpointValidation:
    def test_bad_lineage_edges_rejected(self):
        with pytest.raises(RecoveryConfigError):
            ck(-1, -1)
        with pytest.raises(RecoveryConfigError):
            ck(2, 2)  # self-parent
        with pytest.raises(RecoveryConfigError):
            ck(1, 3)  # parent newer than child


class TestCheckpointStore:
    def test_add_enforces_sequence_and_parent(self):
        store = CheckpointStore()
        store.add(ck(0, -1))
        with pytest.raises(RecoveryConfigError):
            store.add(ck(2, 0))  # skips seq 1
        with pytest.raises(RecoveryConfigError):
            store.add(ck(1, -1))  # not parented to the frontier
        store.add(ck(1, 0))
        assert store.frontier_seq == 1

    def test_lineage_oldest_first(self):
        store = CheckpointStore()
        for seq in range(3):
            store.add(ck(seq, seq - 1))
        assert [c.seq for c in store.lineage(2)] == [0, 1, 2]
        assert store.lineage(-1) == []

    def test_select_restore_walks_past_corruption(self):
        store = CheckpointStore()
        store.add(ck(0, -1))
        store.add(ck(1, 0, corrupted=True))
        store.add(ck(2, 1, corrupted=True))
        choice, tried = store.select_restore()
        assert choice.seq == 0
        # one read charged per snapshot tried, rejects included
        assert [c.seq for c in tried] == [2, 1, 0]

    def test_select_restore_fully_corrupted_chain(self):
        store = CheckpointStore()
        store.add(ck(0, -1, corrupted=True))
        choice, tried = store.select_restore()
        assert choice is None
        assert [c.seq for c in tried] == [0]

    def test_restore_leaves_dead_branch_in_store(self):
        store = CheckpointStore()
        store.add(ck(0, -1))
        store.add(ck(1, 0, corrupted=True))
        store.restore_to(0)
        assert store.frontier_seq == 0
        assert store.next_seq() == 2  # seq numbers stay monotonic
        store.add(ck(2, 0))  # new branch extends the restored frontier
        assert [c.seq for c in store.lineage(2)] == [0, 2]

    def test_covered_views(self):
        store = CheckpointStore()
        store.add(ck(0, -1, ids=("a", "b"), state_bytes=200))
        store.add(ck(1, 0, ids=("c",), state_bytes=300))
        assert store.covered_ids(1) == {"a", "b", "c"}
        assert store.covered_bytes(1) == 300
        assert store.covered_bytes(-1) == 0
        assert store.covered_count(-1) == 0

    def test_restore_to_unknown_seq_rejected(self):
        with pytest.raises(RecoveryConfigError):
            CheckpointStore().restore_to(5)


class TestCheckpointer:
    def make(self, policy=None, **kwargs):
        store = CheckpointStore()
        return store, Checkpointer(
            store, policy or EveryNBatches(1), CheckpointCostModel(), **kwargs
        )

    def test_not_due_without_pending_delta(self):
        _, cp = self.make()
        assert not cp.due(1.0)
        cp.note_accumulate([item()], 0.5)
        assert cp.due(1.0)

    def test_begin_freezes_delta_and_prices_full_state(self):
        store, cp = self.make()
        cp.note_accumulate([item(1000), item(1000)], 0.1)
        charges = cp.begin(0.2)
        assert charges is not None
        serialize, drain = charges
        model = cp.cost_model
        assert serialize == pytest.approx(model.serialize_seconds(2000))
        assert drain == pytest.approx(model.drain_seconds(2000))
        # racing accumulates stay pending for the *next* snapshot
        late = item(500)
        cp.note_accumulate([late], 0.25)
        assert cp.begin(0.25) is None  # one write in flight at a time
        checkpoint = cp.commit(0.3)
        assert checkpoint.seq == 0
        assert len(checkpoint.item_ids) == 2
        assert cp.uncheckpointed_items() == [late]

    def test_full_state_cost_is_cumulative(self):
        store, cp = self.make()
        cp.note_accumulate([item(1000)], 0.1)
        cp.begin(0.1)
        cp.commit(0.2)
        cp.note_accumulate([item(500)], 0.3)
        serialize, _ = cp.begin(0.3)
        # classic CPR: the second write re-serializes everything durable
        assert serialize == pytest.approx(
            cp.cost_model.serialize_seconds(1500)
        )

    def test_commit_without_begin_rejected(self):
        _, cp = self.make()
        with pytest.raises(RecoveryConfigError):
            cp.commit(0.0)

    def test_crash_mid_write_leaves_no_partial_snapshot(self):
        store, cp = self.make()
        lost = [item(), item()]
        cp.note_accumulate(lost, 0.1)
        cp.begin(0.2)
        # crash: begin never reaches commit
        assert store.checkpoints == []
        assert cp.uncheckpointed_items() == lost

    def test_cursor_advances_along_lineage(self):
        store, cp = self.make()
        cp.note_accumulate([item(), item()], 0.1)
        cp.begin(0.1)
        first = cp.commit(0.2)
        cp.note_accumulate([item()], 0.3)
        cp.begin(0.3)
        second = cp.commit(0.4)
        assert (first.cursor, second.cursor) == (2, 3)
        assert second.parent == first.seq

    def test_corruption_drawn_from_injector_at_write_time(self):
        injector = FaultInjector(3, [CheckpointCorruption(rate=1.0)])
        _, cp = self.make(injector=injector, rank=0)
        cp.note_accumulate([item()], 0.1)
        cp.begin(0.1)
        assert cp.commit(0.2).corrupted

    def test_snapshot_results_are_copies(self):
        source = {}
        _, cp = self.make(result_source=source)
        it = item()
        source[id(it)] = [1.0, 2.0]
        cp.note_accumulate([it], 0.1)
        cp.begin(0.1)
        checkpoint = cp.commit(0.2)
        source[id(it)].append(3.0)  # post-snapshot mutation
        ((_, stored),) = checkpoint.results
        assert stored == [1.0, 2.0]

    def test_reset_segment_drops_uncommitted_state(self):
        _, cp = self.make(policy=FixedInterval(0.5))
        cp.note_accumulate([item()], 0.4)
        cp.begin(0.6)
        cp.reset_segment(clock_offset=1.0)
        assert cp.uncheckpointed_items() == []
        assert cp.clock_offset == 1.0
        assert not cp.due(0.4)  # policy clock restarted at segment zero
