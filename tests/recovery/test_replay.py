"""The crash → detect → restore → replay protocol (`run_with_recovery`)."""

import math
from dataclasses import replace

import pytest

import numpy as np

from repro.apps.coulomb import probe_item
from repro.errors import DataLossError, RecoveryConfigError
from repro.kernels.base import FormulaPayload
from repro.faults.injector import FaultInjector
from repro.faults.models import CheckpointCorruption, NodeCrash
from repro.lint.trace_check import verify_tracer
from repro.recovery import (
    CheckpointCostModel,
    EveryNBatches,
    FixedInterval,
    RecoveryConfig,
    run_with_recovery,
)
from repro.runtime.task import HybridTask
from repro.runtime.trace import Tracer
from tests.conftest import make_runtime

#: cost model cheap enough that every-other-batch checkpointing commits
#: comfortably between the crashes these tests schedule
FAST_WRITES = CheckpointCostModel(drain_gbps=4.0)


def tasks(n: int = 120) -> list[HybridTask]:
    proto = probe_item(3, 10, 100)
    return [
        HybridTask(
            work=replace(proto),
            pre_bytes=proto.input_bytes,
            post_bytes=proto.output_bytes,
        )
        for _ in range(n)
    ]


def payload_tasks(n: int = 60) -> list[HybridTask]:
    """Tasks whose items carry numeric payloads, so ``on_complete``
    consumers actually receive results."""
    proto = probe_item(2, 6, 3)
    rng = np.random.default_rng(42)
    q, dim, rank = 12, 2, 3
    out = []
    for _ in range(n):
        payload = FormulaPayload(
            s=rng.standard_normal((q,) * dim),
            factors=[
                tuple(rng.standard_normal((q, q)) for _ in range(dim))
                for _ in range(rank)
            ],
            coeffs=rng.standard_normal(rank),
        )
        out.append(
            HybridTask(
                work=replace(proto, payload=payload),
                pre_bytes=proto.input_bytes,
                post_bytes=proto.output_bytes,
            )
        )
    return out


def factory():
    return make_runtime("hybrid", max_batch_size=20)


def config(policy=None, **kwargs):
    kwargs.setdefault("cost_model", FAST_WRITES)
    return RecoveryConfig(policy=policy or EveryNBatches(2), **kwargs)


def baseline_seconds(n: int = 120) -> float:
    return factory().execute(tasks(n)).total_seconds


class TestConfigValidation:
    def test_policy_type_enforced(self):
        with pytest.raises(RecoveryConfigError):
            RecoveryConfig(policy="often")

    def test_negative_timeout_and_budget_rejected(self):
        with pytest.raises(RecoveryConfigError):
            RecoveryConfig(policy=EveryNBatches(1), failure_detection_timeout=-1)
        with pytest.raises(RecoveryConfigError):
            RecoveryConfig(policy=EveryNBatches(1), max_restarts=-1)

    def test_tasks_without_work_items_rejected(self):
        bare = [HybridTask(work=None, pre_bytes=10, post_bytes=10)]
        with pytest.raises(RecoveryConfigError):
            run_with_recovery(factory, bare, config=config())


class TestHappyPath:
    def test_no_injector_runs_one_segment(self):
        run = run_with_recovery(factory, tasks(), config=config())
        assert run.restarts == 0
        assert len(run.segments) == 1
        assert run.timeline.n_restores == 0

    def test_armed_idle_is_bit_identical(self):
        # a never-firing policy adds no events: same makespan, bit for bit
        run = run_with_recovery(
            factory, tasks(), config=config(FixedInterval(math.inf))
        )
        assert run.timeline.total_seconds == baseline_seconds()

    def test_results_delivered_exactly_once(self):
        work = payload_tasks()
        seen = []
        consumer = seen.append
        for t in work:
            t.work.on_complete = consumer
        base = factory().execute(payload_tasks()).total_seconds
        injector = FaultInjector(0, [NodeCrash(rank=0, at=0.5 * base)])
        run = run_with_recovery(
            factory, work, config=config(), injector=injector
        )
        # the crash replayed accumulated items, yet each consumer sees
        # its result exactly once
        assert run.restarts == 1
        assert len(seen) == len(work)
        # original consumers are restored after the run
        assert all(t.work.on_complete is consumer for t in work)


class TestCrashAndReplay:
    def crash_at(self, *fractions, n=120):
        base = baseline_seconds(n)
        return FaultInjector(
            0, [NodeCrash(rank=0, at=f * base) for f in fractions]
        )

    def test_single_crash_recovers_all_items(self):
        tracer = Tracer()
        run = run_with_recovery(
            factory,
            tasks(),
            config=config(),
            injector=self.crash_at(0.5),
            tracer=tracer,
        )
        verify_tracer(tracer)
        assert run.restarts == 1
        assert len(run.segments) == 2
        assert run.timeline.n_restores == 1
        assert run.timeline.total_seconds > baseline_seconds()

    def test_crash_pays_detection_and_restore(self):
        cfg = config(failure_detection_timeout=0.05)
        run = run_with_recovery(
            factory, tasks(), config=cfg, injector=self.crash_at(0.5)
        )
        # the run is at least a makespan plus the detection window long
        assert run.timeline.total_seconds > baseline_seconds() + 0.05

    def test_checkpoints_bound_the_replay(self):
        inj = self.crash_at(0.6)
        with_ckpt = run_with_recovery(
            factory, tasks(), config=config(EveryNBatches(1)), injector=inj
        )
        without = run_with_recovery(
            factory,
            tasks(),
            config=config(FixedInterval(math.inf)),
            injector=inj,
        )
        # n_replayed counts work done before the crash and done again;
        # checkpoints shrink that window (here to nothing: every batch
        # was durable), never-checkpoint replays every accumulate the
        # crash had banked
        assert (
            with_ckpt.timeline.n_replayed_items
            < without.timeline.n_replayed_items
        )
        assert (
            without.timeline.n_replayed_items
            == without.timeline.n_rolled_back_items
        )

    def test_cascaded_crashes_within_budget(self):
        # never checkpoint: each restart re-executes from scratch and
        # takes a full makespan, so every scheduled crash lands
        tracer = Tracer()
        run = run_with_recovery(
            factory,
            tasks(),
            config=config(FixedInterval(math.inf), max_restarts=3),
            injector=self.crash_at(0.4, 0.9, 1.4),
            tracer=tracer,
        )
        verify_tracer(tracer)
        assert run.restarts == 3

    def test_budget_exhaustion_raises_data_loss(self):
        with pytest.raises(DataLossError) as err:
            run_with_recovery(
                factory,
                tasks(),
                config=config(FixedInterval(math.inf), max_restarts=1),
                injector=self.crash_at(0.4, 1.1),
            )
        # never checkpointed: every item is lost
        assert err.value.lost_items == len(tasks())

    def test_crash_schedule_missing_the_rank_is_a_clean_run(self):
        inj = FaultInjector(0, [NodeCrash(rank=7, at=0.01)])
        run = run_with_recovery(
            factory, tasks(), config=config(), injector=inj
        )
        assert run.restarts == 0


class TestCorruptedLineage:
    def test_restore_walks_past_corrupted_snapshots(self):
        base = baseline_seconds()
        inj = FaultInjector(
            0,
            [
                NodeCrash(rank=0, at=0.7 * base),
                CheckpointCorruption(rate=1.0),
            ],
        )
        tracer = Tracer()
        run = run_with_recovery(
            factory,
            tasks(),
            config=config(EveryNBatches(1)),
            injector=inj,
            tracer=tracer,
        )
        verify_tracer(tracer)
        # every snapshot corrupted: the walk falls back to from-scratch
        restores = [r for r in tracer.log if r.op == "restore"]
        assert [r.kind for r in restores] == ["-1"]
        # nothing was durable, so every banked accumulate is redone
        assert run.timeline.n_replayed_items > 0
        assert (
            run.timeline.n_replayed_items
            == run.timeline.n_rolled_back_items
        )
        assert any(ck.corrupted for ck in run.store.checkpoints)

    def test_dead_branch_stays_in_store_after_partial_corruption(self):
        # corrupt only a window late in the run: the chain walk stops at
        # the newest clean ancestor and later snapshots become a branch
        base = baseline_seconds()
        inj = FaultInjector(
            0,
            [
                NodeCrash(rank=0, at=0.8 * base),
                CheckpointCorruption(rate=1.0, start=0.5 * base),
            ],
        )
        tracer = Tracer()
        run = run_with_recovery(
            factory,
            tasks(),
            config=config(EveryNBatches(1)),
            injector=inj,
            tracer=tracer,
        )
        verify_tracer(tracer)
        corrupted = {ck.seq for ck in run.store.checkpoints if ck.corrupted}
        assert corrupted, "the corruption window must cover some snapshot"
        # the walk stopped at the newest *clean* ancestor, written
        # before the corruption window opened
        (restore,) = [r for r in tracer.log if r.op == "restore"]
        target = int(restore.kind)
        assert target >= 0
        assert not run.store.get(target).corrupted
        assert run.store.get(target).at < 0.5 * base
        # the rejected snapshots survive in the store as a dead branch
        # off the final lineage
        final = {ck.seq for ck in run.store.lineage(run.store.frontier_seq)}
        dead = {ck.seq for ck in run.store.checkpoints} - final
        assert dead
