"""Unit tests for the checkpoint/restart layer (`repro.recovery`)."""
