"""Checkpoint interval policies: due logic and parameter validation."""

import math

import pytest

from repro.errors import RecoveryConfigError
from repro.recovery import (
    EveryNBatches,
    FixedInterval,
    YoungDaly,
    young_daly_interval,
)


class TestFixedInterval:
    def test_due_once_period_elapsed(self):
        policy = FixedInterval(period=0.5)
        assert not policy.due(0.3, 0.0, 2)
        assert policy.due(0.5, 0.0, 2)
        assert policy.due(1.7, 1.0, 1)

    def test_clock_is_relative_to_last_checkpoint(self):
        policy = FixedInterval(period=0.5)
        assert not policy.due(1.2, 1.0, 3)

    def test_infinite_period_never_due(self):
        policy = FixedInterval(period=math.inf)
        assert not policy.due(1e9, 0.0, 10_000)

    @pytest.mark.parametrize("period", [0.0, -1.0, -math.inf])
    def test_nonpositive_period_rejected(self, period):
        with pytest.raises(RecoveryConfigError):
            FixedInterval(period=period)


class TestEveryNBatches:
    def test_due_after_n_batches(self):
        policy = EveryNBatches(n=3)
        assert not policy.due(1.0, 0.0, 2)
        assert policy.due(1.0, 0.0, 3)
        assert policy.due(0.0, 0.0, 4)

    def test_every_batch_extreme(self):
        policy = EveryNBatches(n=1)
        assert policy.due(0.0, 0.0, 1)
        assert not policy.due(0.0, 0.0, 0)

    @pytest.mark.parametrize("n", [0, -1])
    def test_n_below_one_rejected(self, n):
        with pytest.raises(RecoveryConfigError):
            EveryNBatches(n=n)


class TestYoungDaly:
    def test_interval_formula(self):
        # sqrt(2 * C * MTBF)
        assert young_daly_interval(2.0, 0.25) == pytest.approx(1.0)
        assert young_daly_interval(50.0, 0.01) == pytest.approx(1.0)

    def test_interval_grows_with_cost_and_mtbf(self):
        assert young_daly_interval(10.0, 0.1) < young_daly_interval(10.0, 0.4)
        assert young_daly_interval(10.0, 0.1) < young_daly_interval(40.0, 0.1)

    def test_zero_cost_interval_is_zero(self):
        assert young_daly_interval(10.0, 0.0) == 0.0

    @pytest.mark.parametrize("mtbf", [0.0, -1.0])
    def test_nonpositive_mtbf_rejected(self, mtbf):
        with pytest.raises(RecoveryConfigError):
            young_daly_interval(mtbf, 0.1)

    def test_negative_cost_rejected(self):
        with pytest.raises(RecoveryConfigError):
            young_daly_interval(1.0, -0.1)

    def test_policy_period_property(self):
        policy = YoungDaly(mtbf_seconds=2.0, checkpoint_cost_seconds=0.25)
        assert policy.period == pytest.approx(1.0)

    def test_policy_due_at_period(self):
        policy = YoungDaly(mtbf_seconds=2.0, checkpoint_cost_seconds=0.25)
        assert not policy.due(0.9, 0.0, 5)
        assert policy.due(1.0, 0.0, 5)

    def test_zero_cost_checkpoints_every_opportunity(self):
        policy = YoungDaly(mtbf_seconds=2.0, checkpoint_cost_seconds=0.0)
        assert policy.due(0.0, 0.0, 1)
        assert not policy.due(0.0, 0.0, 0)

    def test_invalid_parameters_rejected_at_construction(self):
        with pytest.raises(RecoveryConfigError):
            YoungDaly(mtbf_seconds=0.0, checkpoint_cost_seconds=0.1)
        with pytest.raises(RecoveryConfigError):
            YoungDaly(mtbf_seconds=1.0, checkpoint_cost_seconds=-1.0)
