"""1-D convolution: exact analytic validation of the nonstandard Apply."""

import numpy as np
import pytest

from repro.errors import OperatorError
from repro.mra.function import FunctionFactory
from repro.operators.convolution import ApplyStats, GaussianConvolution
from repro.operators.gaussian_fit import single_gaussian
from tests.conftest import gaussian_1d

ALPHA = 800.0
A = 400.0


@pytest.fixture(scope="module")
def applied():
    fac = FunctionFactory(dim=1, k=8, thresh=1e-8)
    f = fac.from_callable(gaussian_1d(ALPHA))
    op = GaussianConvolution(1, 8, single_gaussian(1.0, A), thresh=1e-8)
    stats = ApplyStats()
    g = op.apply(f, stats=stats)
    return f, op, g, stats


def exact_result(x: float) -> float:
    """exp(-alpha t^2) * exp(-a t^2) convolution, domain truncation tiny."""
    gamma = ALPHA * A / (ALPHA + A)
    return float(np.sqrt(np.pi / (ALPHA + A)) * np.exp(-gamma * (x - 0.5) ** 2))


def test_convolution_pointwise(applied):
    _f, _op, g, _stats = applied
    for x in (0.3, 0.42, 0.5, 0.58, 0.7):
        assert abs(g.eval((x,)) - exact_result(x)) < 1e-7, x


def test_result_is_reconstructed_and_valid(applied):
    _f, _op, g, _stats = applied
    assert g.form == "reconstructed"
    g.tree.check_structure()


def test_stats_populated(applied):
    f, _op, _g, stats = applied
    assert stats.source_nodes == f.tree.size()
    assert stats.tasks > 0
    assert stats.mu_applications >= stats.tasks
    assert sum(stats.by_level.values()) == stats.tasks


def test_apply_does_not_mutate_input_by_default(applied):
    f, op, _g, _stats = applied
    assert f.form == "reconstructed"
    op.apply(f)
    assert f.form == "reconstructed"


def test_apply_in_place_converts_input(applied):
    f, op, _g, _stats = applied
    f2 = f.copy()
    op.apply(f2, copy_input=False)
    assert f2.form == "nonstandard"


def test_linearity_of_apply(applied):
    f, op, g, _stats = applied
    g2 = op.apply(f.copy().scale(2.0))
    for x in (0.4, 0.5, 0.6):
        assert np.isclose(g2.eval((x,)), 2.0 * g.eval((x,)), atol=1e-8)


def test_block_caches_are_reused(applied):
    _f, op, _g, _stats = applied
    hits_before = op.ns_cache.stats.hits
    op.apply(_f)
    assert op.ns_cache.stats.hits > hits_before


def test_dimension_mismatch_rejected(applied):
    _f, op, _g, _stats = applied
    fac2 = FunctionFactory(dim=2, k=8, thresh=1e-4)
    with pytest.raises(OperatorError):
        op.apply(fac2.zero())


def test_smooth_kernel_result_wider_than_input(applied):
    """Convolution spreads mass: in the (resolvable) tail the result
    exceeds the much-narrower input."""
    f, _op, g, _stats = applied
    x_far = 0.3  # exact result here ~1e-6, well above the 1e-8 threshold
    fval = f.eval((x_far,))
    gval = g.eval((x_far,))
    assert gval > 10 * abs(fval)
    assert np.isclose(gval, exact_result(x_far), rtol=1e-2)


def test_operator_norm_estimates_decay_with_level(applied):
    _f, op, _g, _stats = applied
    n0 = op.operator_norm(0, (0,), subtracted=False)
    n3 = op.operator_norm(3, (0,), subtracted=False)
    assert n0 > n3 > 0
