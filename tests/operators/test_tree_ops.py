"""Distributed Compress/Reconstruct/Truncate vs the in-memory versions."""

import numpy as np
import pytest

from repro.dht.distributed_tree import DistributedTree
from repro.dht.process_map import HashProcessMap
from repro.mra.function import MultiresolutionFunction
from repro.operators.tree_ops import DistributedTreeOps
from tests.conftest import gaussian_nd
from repro.mra.function import FunctionFactory


@pytest.fixture(scope="module")
def source():
    fac = FunctionFactory(dim=2, k=6, thresh=1e-5)
    return fac.from_callable(gaussian_nd(2, alpha=150.0))


def shard(f, n_ranks=4):
    return DistributedTree.scatter(f.tree, HashProcessMap(n_ranks))


def as_function(dist, f, form):
    return MultiresolutionFunction(
        f.dim, f.k, dist.gather(), thresh=f.thresh, form=form
    )


def test_distributed_compress_matches_local(source):
    local = source.copy().compress()
    dist = shard(source.copy())
    DistributedTreeOps(dist, source.k).compress()
    gathered = dist.gather()
    for key, node in local.tree.items():
        other = gathered[key]
        if node.coeffs is None:
            assert other.coeffs is None, key
        else:
            assert np.allclose(other.coeffs, node.coeffs, atol=1e-12), key


def test_distributed_reconstruct_roundtrip(source):
    dist = shard(source.copy())
    ops = DistributedTreeOps(dist, source.k)
    ops.compress()
    ops.reconstruct()
    back = as_function(dist, source, "reconstructed")
    for key, node in source.tree.leaves():
        assert np.allclose(back.tree[key].coeffs, node.coeffs, atol=1e-10)


def test_compress_reports_messages_and_time(source):
    dist = shard(source.copy())
    result = DistributedTreeOps(dist, source.k).compress()
    assert result.n_messages > 0  # children often live on other ranks
    assert result.message_bytes > 0
    assert result.total_seconds > 0
    assert result.levels >= source.tree.max_level()
    assert result.flops > 0


def test_single_rank_compress_has_no_messages(source):
    dist = shard(source.copy(), n_ranks=1)
    result = DistributedTreeOps(dist, source.k).compress()
    assert result.n_messages == 0


def test_distributed_truncate_matches_local(source):
    tol = 1e-3
    local = source.copy()
    local.compress()
    local.truncate(tol)
    dist = shard(source.copy())
    ops = DistributedTreeOps(dist, source.k)
    ops.compress()
    ops.truncate(tol)
    gathered = dist.gather()
    assert gathered.size() == local.tree.size()
    assert set(gathered.keys()) == set(local.tree.keys())


def test_truncate_then_reconstruct_stays_accurate(source):
    dist = shard(source.copy())
    ops = DistributedTreeOps(dist, source.k)
    ops.compress()
    ops.truncate(1e-6)
    ops.reconstruct()
    back = as_function(dist, source, "reconstructed")
    diff = (source - back).norm2()
    assert diff < 1e-4


def test_more_ranks_more_messages(source):
    few = DistributedTreeOps(shard(source.copy(), 2), source.k).compress()
    many = DistributedTreeOps(shard(source.copy(), 16), source.k).compress()
    assert many.n_messages > few.n_messages
