"""Tests for the separated Gaussian expansion of 1/r."""

import numpy as np
import pytest

from repro.errors import OperatorError
from repro.operators.gaussian_fit import (
    GaussianExpansion,
    fit_inverse_r,
    single_gaussian,
)


@pytest.mark.parametrize("eps", [1e-3, 1e-6, 1e-8])
def test_fit_accuracy(eps):
    r_lo = 1e-3
    fit = fit_inverse_r(eps, r_lo)
    err = fit.max_relative_error(lambda r: 1.0 / r, r_lo, np.sqrt(3.0))
    assert err < 10 * eps, (eps, err, fit.rank)


def test_rank_grows_with_precision():
    """Higher precision -> more Gaussian terms (the paper's M ~ 100)."""
    ranks = [fit_inverse_r(eps, 1e-4).rank for eps in (1e-2, 1e-6, 1e-10)]
    assert ranks[0] < ranks[1] < ranks[2]


def test_rank_grows_with_resolved_range():
    wide = fit_inverse_r(1e-6, 1e-6).rank
    narrow = fit_inverse_r(1e-6, 1e-2).rank
    assert wide > narrow


def test_paper_regime_rank_order_of_magnitude():
    """At the paper's precisions the rank should be of order 100."""
    rank = fit_inverse_r(1e-10, 1e-5).rank
    assert 50 <= rank <= 300


def test_single_gaussian_evaluates():
    g = single_gaussian(2.0, 10.0)
    assert g.rank == 1
    assert np.isclose(g(0.0), 2.0)
    assert np.isclose(g(1.0), 2.0 * np.exp(-10.0))


def test_expansion_vectorized_evaluation():
    g = single_gaussian(1.0, 5.0)
    r = np.linspace(0, 1, 11)
    vals = g(r)
    assert vals.shape == r.shape
    assert np.allclose(vals, np.exp(-5.0 * r * r))


def test_expansion_validation():
    with pytest.raises(OperatorError):
        GaussianExpansion(np.ones(3), np.ones(2))
    with pytest.raises(OperatorError):
        GaussianExpansion(np.ones(2), np.array([1.0, -1.0]))


def test_fit_parameter_validation():
    with pytest.raises(OperatorError):
        fit_inverse_r(1e-6, -1.0)
    with pytest.raises(OperatorError):
        fit_inverse_r(2.0, 1e-3)
    with pytest.raises(OperatorError):
        fit_inverse_r(1e-6, 2.0, 1.0)


def test_truncated_keeps_selected_terms():
    fit = fit_inverse_r(1e-4, 1e-3)
    keep = np.arange(fit.rank // 2)
    small = fit.truncated(keep)
    assert small.rank == len(keep)
    assert np.allclose(small.coeffs, fit.coeffs[keep])
