"""Tests for the 1-D operator blocks."""

import numpy as np
import pytest

from repro.errors import OperatorError
from repro.mra.quadrature import gauss_legendre, phi_values
from repro.mra.twoscale import TwoScaleFilter
from repro.operators.blocks import (
    gaussian_block_1d,
    ns_block_from_children,
    phi_correlation,
)


def _dense_block(k, a, level, delta, npt=80):
    """Brute-force 2-D tensor quadrature (valid only for wide kernels)."""
    x, w = gauss_legendre(npt)
    phi = phi_values(x, k)
    beta = a * 4.0 ** (-level)
    kernel = np.exp(-beta * (x[:, None] - x[None, :] + delta) ** 2)
    return 2.0 ** (-level) * np.einsum("u,v,uv,ui,vj->ij", w, w, kernel, phi, phi)


@pytest.mark.parametrize("delta", [0, 1, -1, 2])
def test_block_matches_dense_quadrature_smooth(delta):
    """For wide Gaussians, plain tensor quadrature is accurate: compare."""
    k, a, level = 6, 8.0, 0
    ours = gaussian_block_1d(k, a, level, delta)
    dense = _dense_block(k, a, level, delta)
    assert np.allclose(ours, dense, atol=1e-12)


def test_block_symmetry():
    """Even kernel: R^{n,-d} = (R^{n,d})^T."""
    k, a, level = 7, 120.0, 1
    r_plus = gaussian_block_1d(k, a, level, 1)
    r_minus = gaussian_block_1d(k, a, level, -1)
    assert np.allclose(r_plus, r_minus.T, atol=1e-13)


def test_block_delta_zero_symmetric():
    r = gaussian_block_1d(6, 50.0, 0, 0)
    assert np.allclose(r, r.T, atol=1e-13)


def test_sharp_kernel_delta_function_limit():
    """A very sharp Gaussian acts like sqrt(pi/a) * identity."""
    k, a = 8, 1e8
    r = gaussian_block_1d(k, a, 0, 0)
    scale = np.sqrt(np.pi / a)
    expected = scale * np.eye(k)
    assert np.abs(r - expected).max() < 2e-3 * scale


def test_far_displacement_negligible():
    k, a, level = 6, 1e4, 0
    r = gaussian_block_1d(k, a, level, 5)
    assert np.abs(r).max() < 1e-20


def test_block_norm_decays_with_displacement():
    k, a, level = 6, 40.0, 0
    norms = [
        np.linalg.norm(gaussian_block_1d(k, a, level, d), 2) for d in range(4)
    ]
    assert norms[0] > norms[1] > norms[2] > norms[3]


def test_ns_block_corner_consistency():
    """The NS block's scaling corner equals the coarse-level block."""
    k = 6
    filt = TwoScaleFilter.build(k)
    for a in (5.0, 500.0, 5e4):
        for level in (0, 2):
            for delta in (0, 1, 2):
                coarse = gaussian_block_1d(k, a, level, delta)
                t = ns_block_from_children(
                    filt,
                    gaussian_block_1d(k, a, level + 1, 2 * delta),
                    gaussian_block_1d(k, a, level + 1, 2 * delta - 1),
                    gaussian_block_1d(k, a, level + 1, 2 * delta + 1),
                )
                assert np.allclose(t[:k, :k], coarse, atol=1e-11), (a, level, delta)


def test_ns_block_shape_validation():
    filt = TwoScaleFilter.build(4)
    bad = np.zeros((5, 5))
    with pytest.raises(OperatorError):
        ns_block_from_children(filt, bad, bad, bad)


def test_phi_correlation_at_zero_shift_is_identity():
    """C(0) is the Gram matrix of the orthonormal basis."""
    k = 7
    c = phi_correlation(k, np.array([0.0]))[0]
    assert np.allclose(c, np.eye(k), atol=1e-12)


def test_phi_correlation_vanishes_beyond_support():
    k = 5
    c = phi_correlation(k, np.array([1.0, -1.0, 1.5]))
    assert np.abs(c).max() < 1e-14


def test_block_input_validation():
    with pytest.raises(OperatorError):
        gaussian_block_1d(5, -1.0, 0, 0)
    with pytest.raises(OperatorError):
        gaussian_block_1d(5, 1.0, -1, 0)
