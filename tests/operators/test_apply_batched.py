"""The hybrid batched Apply must agree with the reference Apply."""

import numpy as np
import pytest

from repro.errors import OperatorError
from repro.mra.function import FunctionFactory
from repro.operators.apply_batched import BatchedApply
from repro.operators.convolution import GaussianConvolution
from repro.operators.gaussian_fit import single_gaussian
from tests.conftest import gaussian_1d, gaussian_nd, make_runtime


@pytest.fixture(scope="module")
def problem_1d():
    fac = FunctionFactory(dim=1, k=8, thresh=1e-8)
    f = fac.from_callable(gaussian_1d(800.0))
    op = GaussianConvolution(1, 8, single_gaussian(1.0, 400.0), thresh=1e-8)
    return f, op, op.apply(f)


@pytest.fixture(scope="module")
def problem_2d():
    fac = FunctionFactory(dim=2, k=6, thresh=1e-5)
    f = fac.from_callable(gaussian_nd(2, alpha=150.0))
    op = GaussianConvolution(2, 6, single_gaussian(1.0, 250.0), thresh=1e-6)
    return f, op, op.apply(f)


@pytest.mark.parametrize("mode", ["cpu", "gpu", "hybrid"])
def test_1d_batched_equals_reference(problem_1d, mode):
    f, op, reference = problem_1d
    result = BatchedApply(op, make_runtime(mode)).apply(f)
    assert (reference - result.function).norm2() < 1e-10


def test_2d_batched_equals_reference(problem_2d):
    f, op, reference = problem_2d
    result = BatchedApply(op, make_runtime("hybrid")).apply(f)
    rel = (reference - result.function).norm2() / reference.norm2()
    assert rel < 1e-5


def test_gpu_kernel_choice_does_not_change_numerics(problem_1d):
    f, op, _ref = problem_1d
    custom = BatchedApply(op, make_runtime("gpu", gpu_kernel="custom")).apply(f)
    cublas = BatchedApply(op, make_runtime("gpu", gpu_kernel="cublas")).apply(f)
    assert (custom.function - cublas.function).norm2() < 1e-12


def test_timeline_accounts_batches_and_items(problem_2d):
    f, op, _ref = problem_2d
    result = BatchedApply(op, make_runtime("hybrid")).apply(f)
    tl = result.timeline
    assert tl.n_batches > 0
    assert tl.n_cpu_items + tl.n_gpu_items == tl.n_tasks
    assert tl.total_seconds > 0
    assert result.stats.tasks > 0


def test_gpu_mode_ships_bytes(problem_2d):
    f, op, _ref = problem_2d
    result = BatchedApply(op, make_runtime("gpu")).apply(f)
    assert result.timeline.bytes_to_gpu > 0
    assert result.timeline.block_bytes_shipped > 0
    assert result.timeline.n_cpu_items == 0


def test_cpu_mode_ships_nothing(problem_2d):
    f, op, _ref = problem_2d
    result = BatchedApply(op, make_runtime("cpu")).apply(f)
    assert result.timeline.bytes_to_gpu == 0
    assert result.timeline.n_gpu_items == 0


def test_block_cache_dedups_transfers(problem_2d):
    """Within one run, repeated blocks cross PCIe once (write-once cache).

    A small batch cap forces several batches per kind so that later
    batches find their blocks already resident.
    """
    f, op, _ref = problem_2d
    runtime = make_runtime("gpu", max_batch_size=4)
    result = BatchedApply(op, runtime).apply(f)
    cache = runtime.gpu_cache
    assert cache.stats.hits > 0
    assert result.timeline.block_bytes_shipped == cache.stats.bytes_inserted


def test_dimension_mismatch_rejected(problem_1d):
    _f, op, _ref = problem_1d
    fac = FunctionFactory(dim=2, k=8, thresh=1e-4)
    with pytest.raises(OperatorError):
        BatchedApply(op, make_runtime()).apply(fac.zero())


def test_hybrid_time_between_pure_modes(problem_2d):
    """Simulated hybrid time must not exceed either pure mode."""
    f, op, _ref = problem_2d
    times = {}
    for mode in ("cpu", "gpu", "hybrid"):
        times[mode] = BatchedApply(op, make_runtime(mode)).apply(f).timeline.total_seconds
    assert times["hybrid"] <= 1.15 * min(times["cpu"], times["gpu"])
