"""3-D Coulomb validation: V = rho * 1/r must match erf(sqrt(a) r)/r."""

import numpy as np
import pytest

from repro.apps.coulomb import CoulombApplication
from repro.operators.convolution import ApplyStats


@pytest.fixture(scope="module")
def coulomb_result():
    density, operator, exact = CoulombApplication.real_instance(
        k=6, thresh=1e-3, eps=1e-4, alpha=300.0
    )
    stats = ApplyStats()
    potential = operator.apply(density, stats=stats)
    return density, operator, potential, exact, stats


def test_potential_matches_erf(coulomb_result):
    _rho, _op, v, exact, _stats = coulomb_result
    for r in (0.02, 0.05, 0.1, 0.2, 0.3):
        got = v.eval((0.5 + r, 0.5, 0.5))
        want = exact(r)
        assert abs(got - want) / want < 1e-3, (r, got, want)


def test_potential_radially_symmetric(coulomb_result):
    _rho, _op, v, _exact, _stats = coulomb_result
    r = 0.15
    vals = [
        v.eval((0.5 + r, 0.5, 0.5)),
        v.eval((0.5, 0.5 + r, 0.5)),
        v.eval((0.5, 0.5, 0.5 - r)),
    ]
    assert max(vals) - min(vals) < 5e-3 * max(vals)


def test_far_field_is_total_charge_over_r(coulomb_result):
    """The density integrates to 1, so V ~ 1/r far from the center."""
    _rho, _op, v, _exact, _stats = coulomb_result
    r = 0.35
    assert abs(v.eval((0.5 + r, 0.5, 0.5)) - 1.0 / r) / (1.0 / r) < 5e-3


def test_task_counts_reported(coulomb_result):
    rho, _op, _v, _exact, stats = coulomb_result
    assert stats.source_nodes == rho.tree.size()
    assert stats.tasks > stats.source_nodes  # several displacements each
    assert stats.screened_displacements > 0  # screening really happens


def test_screening_reduces_mu_work(coulomb_result):
    _rho, op, _v, _exact, stats = coulomb_result
    # without screening every task would run the full rank
    assert stats.mu_applications < stats.tasks * op.expansion.rank


def test_displacement_lists_shrink_with_level(coulomb_result):
    """The subtracted (wavelet-coupling) norms decay fast with distance,
    so fine levels keep only near displacements."""
    _rho, op, _v, _exact, _stats = coulomb_result
    lengths = {
        level: len(op.level_displacements(level)) for level in (1, 3)
    }
    assert lengths[3] <= lengths[1] * 27  # sane bound
    # and every list is much smaller than the unscreened cube
    full = (2 * op.max_radius + 1) ** 3
    assert all(n < full for n in lengths.values())
