"""Tests for the write-once operator block cache."""

import numpy as np

from repro.operators.cache import CacheStats, OperatorBlockCache


def test_miss_then_hit():
    cache = OperatorBlockCache()
    calls = []

    def compute():
        calls.append(1)
        return np.ones((4, 4))

    a = cache.get_or_compute("k1", compute)
    b = cache.get_or_compute("k1", compute)
    assert a is b
    assert len(calls) == 1
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.bytes_inserted == a.nbytes


def test_distinct_keys():
    cache = OperatorBlockCache()
    cache.get_or_compute(("a", 1), lambda: np.zeros(2))
    cache.get_or_compute(("a", 2), lambda: np.zeros(2))
    assert len(cache) == 2
    assert ("a", 1) in cache
    assert ("b", 1) not in cache


def test_hit_rate():
    cache = OperatorBlockCache()
    for _ in range(4):
        cache.get_or_compute("x", lambda: np.zeros(1))
    assert cache.stats.hit_rate == 0.75
    assert cache.stats.accesses == 4


def test_empty_stats():
    assert CacheStats().hit_rate == 0.0


def test_clear_resets():
    cache = OperatorBlockCache()
    cache.get_or_compute("x", lambda: np.zeros(8))
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.accesses == 0
