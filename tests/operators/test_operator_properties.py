"""Property-based tests of the operator-block machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mra.quadrature import gauss_legendre, phi_values
from repro.mra.twoscale import TwoScaleFilter
from repro.operators.blocks import gaussian_block_1d, ns_block_from_children
from repro.operators.gaussian_fit import fit_inverse_r

exponents = st.floats(0.5, 1e6)
levels = st.integers(0, 6)
deltas = st.integers(-4, 4)
orders = st.integers(2, 8)


def _dense_block(k, a, level, delta, npt=60):
    x, w = gauss_legendre(npt)
    phi = phi_values(x, k)
    beta = a * 4.0 ** (-level)
    kernel = np.exp(-beta * (x[:, None] - x[None, :] + delta) ** 2)
    return 2.0 ** (-level) * np.einsum("u,v,uv,ui,vj->ij", w, w, kernel, phi, phi)


@given(orders, st.floats(0.5, 200.0), levels, deltas)
@settings(max_examples=40, deadline=None)
def test_block_matches_dense_quadrature_for_wide_kernels(k, a, level, delta):
    """For beta small enough that tensor quadrature converges, the
    windowed correlation evaluation must agree."""
    beta = a * 4.0 ** (-level)
    if beta > 300.0:
        return  # dense reference itself unreliable there
    ours = gaussian_block_1d(k, a, level, delta)
    dense = _dense_block(k, a, level, delta)
    assert np.allclose(ours, dense, atol=1e-10)


@given(orders, exponents, levels, st.integers(0, 4))
@settings(max_examples=40, deadline=None)
def test_block_symmetry_property(k, a, level, dabs):
    plus = gaussian_block_1d(k, a, level, dabs)
    minus = gaussian_block_1d(k, a, level, -dabs)
    assert np.allclose(plus, minus.T, atol=1e-12)


@given(orders, exponents, levels)
@settings(max_examples=40, deadline=None)
def test_block_positive_diagonal_at_zero_displacement(k, a, level):
    """The kernel is positive, so <phi_i | K | phi_i> at delta=0 is > 0
    for the constant mode and the matrix is symmetric PSD-ish."""
    r = gaussian_block_1d(k, a, level, 0)
    assert r[0, 0] > 0
    eigs = np.linalg.eigvalsh((r + r.T) / 2)
    assert eigs.min() > -1e-10 * max(1.0, eigs.max())


@given(orders, st.floats(1.0, 1e5), levels, st.integers(0, 2))
@settings(max_examples=30, deadline=None)
def test_ns_corner_consistency_property(k, a, level, delta):
    filt = TwoScaleFilter.build(k)
    coarse = gaussian_block_1d(k, a, level, delta)
    t = ns_block_from_children(
        filt,
        gaussian_block_1d(k, a, level + 1, 2 * delta),
        gaussian_block_1d(k, a, level + 1, 2 * delta - 1),
        gaussian_block_1d(k, a, level + 1, 2 * delta + 1),
    )
    scale = max(1.0, float(np.abs(coarse).max()))
    assert np.allclose(t[:k, :k], coarse, atol=1e-10 * scale)


@given(st.floats(1e-8, 1e-3), st.floats(1e-5, 1e-2))
@settings(max_examples=25, deadline=None)
def test_inverse_r_fit_accuracy_property(eps, r_lo):
    fit = fit_inverse_r(eps, r_lo)
    err = fit.max_relative_error(lambda r: 1.0 / r, r_lo, np.sqrt(3.0))
    assert err < 50 * eps
