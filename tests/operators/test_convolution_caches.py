"""Cache behaviour and determinism of the convolution operator."""

import numpy as np
import pytest

from repro.mra.function import FunctionFactory
from repro.operators.convolution import GaussianConvolution
from repro.operators.gaussian_fit import GaussianExpansion, single_gaussian
from tests.conftest import gaussian_1d


@pytest.fixture()
def op():
    return GaussianConvolution(1, 6, single_gaussian(1.0, 100.0), thresh=1e-6)


def test_r_block_cached_by_identity(op):
    a = op.r_block(1, 2, 0)
    b = op.r_block(1, 2, 0)
    assert a is b
    assert op.r_cache.stats.hits >= 1


def test_negative_delta_served_from_positive_cache(op):
    plus = op.r_block(1, 2, 0)
    minus = op.r_block(1, -2, 0)
    assert np.shares_memory(minus.base if minus.base is not None else minus, plus) or \
        np.allclose(minus, plus.T)


def test_level_displacements_cached(op):
    first = op.level_displacements(2)
    second = op.level_displacements(2)
    assert first is second


def test_displacement_norms_sorted_by_ring(op):
    disps = op.level_displacements(1)
    radii = [max(abs(c) for c in d) for d, _n in disps]
    assert radii == sorted(radii)


def test_term_norms_nonnegative(op):
    norms = op.term_norms(1, (1,), subtracted=True)
    assert np.all(norms >= 0)
    norms_full = op.term_norms(1, (1,), subtracted=False)
    assert np.all(norms_full >= 0)


def test_coupling_norms_decay_faster_for_long_range_kernels():
    """For a long-range kernel (1/r fit), the full operator norm decays
    slowly with distance while the wavelet-coupling (subtracted) norm
    decays fast thanks to vanishing moments — the basis of the screening
    strategy and the reason the telescoped Apply stays local."""
    from repro.operators.gaussian_fit import fit_inverse_r

    coulomb = GaussianConvolution(
        1, 6, fit_inverse_r(1e-4, 1e-3, 1.0), thresh=1e-6
    )
    level = 3
    full_near = coulomb.operator_norm(level, (1,), subtracted=False)
    full_far = coulomb.operator_norm(level, (6,), subtracted=False)
    coup_near = coulomb.operator_norm(level, (1,), subtracted=True)
    coup_far = coulomb.operator_norm(level, (6,), subtracted=True)
    # 1/r: the full norm only drops ~6x over 6 boxes...
    assert full_far > full_near / 30
    # ...while the coupling norm collapses by orders of magnitude
    assert coup_far < coup_near / 1e3


def test_apply_is_deterministic(op):
    fac = FunctionFactory(dim=1, k=6, thresh=1e-6)
    f = fac.from_callable(gaussian_1d(200.0))
    g1 = op.apply(f)
    g2 = op.apply(f)
    assert (g1 - g2).norm2() == 0.0


def test_multi_term_expansion_is_sum_of_terms():
    """Linearity over the separated expansion: a 2-term operator equals
    the sum of the single-term operators."""
    fac = FunctionFactory(dim=1, k=6, thresh=1e-8)
    f = fac.from_callable(gaussian_1d(300.0))
    op_a = GaussianConvolution(1, 6, single_gaussian(1.0, 50.0), thresh=1e-9)
    op_b = GaussianConvolution(1, 6, single_gaussian(0.5, 200.0), thresh=1e-9)
    both = GaussianConvolution(
        1, 6,
        GaussianExpansion(np.array([1.0, 0.5]), np.array([50.0, 200.0])),
        thresh=1e-9,
    )
    combined = both.apply(f)
    summed = op_a.apply(f) + op_b.apply(f)
    assert (combined - summed).norm2() < 1e-7
