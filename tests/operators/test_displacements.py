"""Tests for displacement ring enumeration."""

import pytest

from repro.operators.displacements import (
    displacement_ring,
    displacements_up_to,
    ring_sizes,
)


def test_ring_zero():
    assert list(displacement_ring(3, 0)) == [(0, 0, 0)]


@pytest.mark.parametrize("dim,radius", [(1, 1), (2, 1), (2, 2), (3, 1), (3, 2)])
def test_ring_sizes_match_formula(dim, radius):
    ring = list(displacement_ring(dim, radius))
    expected = (2 * radius + 1) ** dim - (2 * radius - 1) ** dim
    assert len(ring) == expected
    assert ring_sizes(dim, radius)[-1] == expected


def test_ring_members_have_exact_radius():
    for vec in displacement_ring(3, 2):
        assert max(abs(c) for c in vec) == 2


def test_rings_are_disjoint_and_cover():
    all_disps = displacements_up_to(2, 3)
    assert len(all_disps) == len(set(all_disps)) == 7 * 7


def test_ring_order_is_deterministic():
    assert list(displacement_ring(2, 1)) == list(displacement_ring(2, 1))


def test_negative_radius_rejected():
    with pytest.raises(ValueError):
        list(displacement_ring(2, -1))


def test_up_to_orders_by_ring():
    disps = displacements_up_to(2, 2)
    radii = [max(abs(c) for c in d) for d in disps]
    assert radii == sorted(radii)
