"""The full distributed hybrid Apply: numerics + cluster accounting."""

import pytest

from repro.cluster.distributed_apply import DistributedApply
from repro.dht.process_map import HashProcessMap, SubtreePartitionMap
from repro.errors import OperatorError
from repro.mra.function import FunctionFactory
from tests.conftest import make_runtime


@pytest.fixture(scope="module")
def problem(request):
    from repro.operators.convolution import GaussianConvolution
    from repro.operators.gaussian_fit import single_gaussian
    from tests.conftest import gaussian_nd

    fac = FunctionFactory(dim=2, k=6, thresh=1e-5)
    f = fac.from_callable(gaussian_nd(2, alpha=150.0))
    op = GaussianConvolution(2, 6, single_gaussian(1.0, 250.0), thresh=1e-6)
    return f, op, op.apply(f)


def distributed(op, n_ranks, mode="hybrid", pmap=None):
    pmap = pmap or HashProcessMap(n_ranks)
    return DistributedApply(op, pmap, lambda rank: make_runtime(mode))


@pytest.mark.parametrize("n_ranks", [1, 3, 8])
def test_matches_reference_any_rank_count(problem, n_ranks):
    f, op, reference = problem
    result = distributed(op, n_ranks).apply(f)
    assert (reference - result.function).norm2() < 1e-10


@pytest.mark.parametrize("mode", ["cpu", "gpu"])
def test_matches_reference_any_mode(problem, mode):
    f, op, reference = problem
    result = distributed(op, 4, mode=mode).apply(f)
    assert (reference - result.function).norm2() < 1e-10


def test_locality_map_agrees_too(problem):
    f, op, reference = problem
    result = distributed(op, 4, pmap=SubtreePartitionMap(4, anchor_level=1)).apply(f)
    assert (reference - result.function).norm2() < 1e-10


def test_single_rank_sends_no_messages(problem):
    f, op, _ref = problem
    result = distributed(op, 1).apply(f)
    assert result.n_messages == 0
    assert result.message_bytes == 0


def test_multi_rank_sends_messages(problem):
    f, op, _ref = problem
    result = distributed(op, 4).apply(f)
    assert result.n_messages > 0
    assert result.message_bytes > 0
    assert any(c > 0 for c in result.comm_seconds)


def test_locality_map_fewer_messages_than_hash(problem):
    """The point of locality maps: neighbours stay on-rank."""
    f, op, _ref = problem
    hashed = distributed(op, 4).apply(f)
    local = distributed(
        op, 4, pmap=SubtreePartitionMap(4, anchor_level=1)
    ).apply(f)
    assert local.n_messages < hashed.n_messages


def test_task_accounting(problem):
    f, op, _ref = problem
    result = distributed(op, 4).apply(f)
    assert sum(t.n_tasks for t in result.node_timelines) == result.stats.tasks * 2 - \
        sum(1 for lvl, n in result.stats.by_level.items() if lvl == 0 for _ in range(n))
    assert result.makespan_seconds >= max(
        t.total_seconds for t in result.node_timelines
    )


def test_makespan_tracks_most_loaded_rank(problem):
    f, op, _ref = problem
    result = distributed(op, 4).apply(f)
    assert result.imbalance.imbalance >= 1.0
    assert result.n_ranks == 4


def test_dimension_mismatch_rejected(problem):
    _f, op, _ref = problem
    other = FunctionFactory(dim=1, k=6, thresh=1e-4).zero()
    with pytest.raises(OperatorError):
        distributed(op, 2).apply(other)
