"""Failure/heterogeneity injection: stragglers and failed GPUs.

Exercises the deprecated ``failed_gpus`` alias on purpose — the
FaultInjector-backed replacement is covered in test_cluster_faults.py.
"""

import pytest

pytestmark = pytest.mark.filterwarnings(
    "ignore:failed_gpus is deprecated:DeprecationWarning"
)

from repro.apps.workloads import SyntheticApplyWorkload
from repro.cluster.simulation import ClusterSimulation
from repro.dht.process_map import HashProcessMap
from repro.errors import ClusterConfigError


@pytest.fixture(scope="module")
def workload():
    return SyntheticApplyWorkload(
        dim=3, k=10, rank=60, n_tasks=2000, n_tree_leaves=256, seed=5
    )


def run(workload, nodes=4, **kwargs):
    return ClusterSimulation(nodes, HashProcessMap(nodes), **kwargs).run(
        workload.tasks
    )


def test_straggler_slows_makespan(workload):
    clean = run(workload, mode="gpu").makespan_seconds
    slowed = run(workload, mode="gpu", stragglers={0: 3.0}).makespan_seconds
    # with an even map the straggler holds ~1/4 of the work at 1/3 speed
    assert 2.0 < slowed / clean < 3.4


def test_straggler_only_affects_its_rank(workload):
    res = run(workload, mode="gpu", stragglers={0: 3.0})
    slow = res.node_results[0].timeline.total_seconds
    fast = res.node_results[1].timeline.total_seconds
    assert slow > 2.0 * fast


def test_unit_slowdown_is_identity(workload):
    clean = run(workload, mode="gpu").makespan_seconds
    unit = run(workload, mode="gpu", stragglers={0: 1.0}).makespan_seconds
    assert clean == pytest.approx(unit)


def test_invalid_straggler_rejected(workload):
    with pytest.raises(ClusterConfigError):
        run(workload, stragglers={0: -2.0})


def test_failed_gpu_falls_back_to_cpu(workload):
    res = run(workload, mode="hybrid", failed_gpus={1})
    victim = res.node_results[1].timeline
    other = res.node_results[2].timeline
    assert victim.n_gpu_items == 0
    assert victim.gpu_busy == 0.0
    assert other.n_gpu_items > 0


def test_failed_gpu_degrades_but_completes(workload):
    clean = run(workload, mode="hybrid")
    degraded = run(workload, mode="hybrid", failed_gpus={1})
    assert degraded.total_tasks == clean.total_tasks
    assert degraded.makespan_seconds > clean.makespan_seconds
    # the fallback node uses its whole CPU: slowdown is bounded
    assert degraded.makespan_seconds < 12 * clean.makespan_seconds


def test_failed_gpu_irrelevant_in_cpu_mode(workload):
    clean = run(workload, mode="cpu").makespan_seconds
    failed = run(workload, mode="cpu", failed_gpus={0}).makespan_seconds
    assert clean == pytest.approx(failed)
