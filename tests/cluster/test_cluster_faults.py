"""Cluster-level fault injection: the FaultInjector-backed replacement
for ``failed_gpus``, node crashes, and message faults.

Node crashes have exactly one handling mode: checkpoint/restart
recovery (``recovery=RecoveryConfig(...)`` — the crashed rank restores
its last snapshot and replays in place).  The old omniscient
redistribution path (which knew the crash schedule before the run) was
removed; scheduling a crash without a recovery config is a
configuration error."""

from __future__ import annotations

import warnings

import pytest

from repro.apps.workloads import SyntheticApplyWorkload
from repro.cluster.simulation import ClusterSimulation
from repro.dht.process_map import HashProcessMap
from repro.errors import ClusterConfigError
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    GpuFailure,
    MessageDelay,
    MessageLoss,
    NodeCrash,
)
from repro.recovery import CheckpointCostModel, EveryNBatches, RecoveryConfig

NODES = 4


@pytest.fixture(scope="module")
def workload():
    return SyntheticApplyWorkload(
        dim=3, k=10, rank=60, n_tasks=800, n_tree_leaves=128, seed=5
    )


def run(workload, **kwargs):
    sim = ClusterSimulation(NODES, HashProcessMap(NODES), mode="hybrid",
                            **kwargs)
    return sim.run(workload.tasks)


class TestDeprecatedAlias:
    def test_failed_gpus_warns(self, workload):
        with pytest.warns(DeprecationWarning, match="fault_injector"):
            ClusterSimulation(
                NODES, HashProcessMap(NODES), failed_gpus={1}
            )

    def test_alias_matches_injector_equivalent(self, workload):
        with pytest.warns(DeprecationWarning):
            legacy = run(workload, failed_gpus={1})
        inj = FaultInjector(faults=[GpuFailure(rank=1, permanent=True)])
        modern = run(workload, fault_injector=inj)
        assert legacy.makespan_seconds == modern.makespan_seconds
        for a, b in zip(legacy.node_results, modern.node_results):
            assert a.timeline.total_seconds == b.timeline.total_seconds

    def test_alias_still_falls_back_to_cpu(self, workload):
        with pytest.warns(DeprecationWarning):
            res = run(workload, failed_gpus={1})
        assert res.node_results[1].timeline.n_gpu_items == 0
        assert res.node_results[2].timeline.n_gpu_items > 0


class TestNodeCrash:
    """Scheduled crashes demand an honest recovery config — the
    omniscient redistribution path (perfect foresight of the crash
    schedule) was removed."""

    def test_crash_without_recovery_rejected(self, workload):
        inj = FaultInjector(faults=[NodeCrash(rank=2, at=0.001)])
        with pytest.raises(ClusterConfigError, match="recovery="):
            run(workload, fault_injector=inj)

    def test_crash_without_recovery_rejected_under_stealing(self, workload):
        from repro.cluster.stealing import StealingConfig

        inj = FaultInjector(faults=[NodeCrash(rank=2, at=0.001)])
        with pytest.raises(ClusterConfigError, match="recovery="):
            run(
                workload,
                fault_injector=inj,
                stealing=StealingConfig(chunk_size=8, executor="analytic"),
            )

    def test_crash_after_completion_recovers_nothing(self, workload):
        clean = run(workload)
        inj = FaultInjector(
            faults=[NodeCrash(rank=2, at=clean.makespan_seconds * 10)]
        )
        res = run(
            workload,
            fault_injector=inj,
            recovery=TestCheckpointRecovery.recovery_config(),
        )
        # the schedule missed: no restarts, nothing teleports
        assert res.total_restarts == 0
        assert [r.n_tasks for r in res.node_results] == [
            r.n_tasks for r in clean.node_results
        ]

    def test_all_ranks_crashing_still_recovers(self, workload):
        # no "survivors" precondition anymore: every rank restores from
        # its own durable lineage, so even a full-partition outage
        # completes (each rank pays its own detect+restore+replay)
        inj = FaultInjector(
            faults=[NodeCrash(rank=r, at=1e-4) for r in range(NODES)]
        )
        res = run(
            workload,
            fault_injector=inj,
            recovery=TestCheckpointRecovery.recovery_config(),
        )
        assert res.total_restarts == NODES
        assert sum(r.n_tasks for r in res.node_results) == len(workload.tasks)


class TestCheckpointRecovery:
    """Crashes with ``recovery=RecoveryConfig(...)``: the crashed rank
    restores its last checkpoint and replays in place — no omniscient
    redistribution, no deprecation warning."""

    @staticmethod
    def recovery_config():
        # node makespans here are a few ms; keep the detection and
        # restart charges proportionate
        return RecoveryConfig(
            policy=EveryNBatches(2),
            cost_model=CheckpointCostModel(
                drain_gbps=4.0, restart_seconds=1e-4
            ),
            failure_detection_timeout=1e-4,
        )

    def test_recovery_path_emits_no_deprecation(self, workload):
        clean = run(workload)
        inj = FaultInjector(
            faults=[NodeCrash(rank=2, at=clean.makespan_seconds * 0.4)]
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run(workload, fault_injector=inj,
                recovery=self.recovery_config())

    def test_crashed_rank_keeps_its_tasks(self, workload):
        clean = run(workload)
        at = clean.node_results[2].total_seconds * 0.4
        inj = FaultInjector(faults=[NodeCrash(rank=2, at=at)])
        res = run(workload, fault_injector=inj,
                  recovery=self.recovery_config())
        # nothing teleports: every rank runs exactly its own share
        assert [r.n_tasks for r in res.node_results] == [
            r.n_tasks for r in clean.node_results
        ]
        assert sum(r.n_tasks for r in res.node_results) == len(workload.tasks)
        assert res.total_restarts >= 1
        assert res.node_results[2].crashed_at == at
        assert res.node_results[2].restarts >= 1
        assert all(
            r.restarts == 0 for r in res.node_results if r.rank != 2
        )
        # the victim pays detection + restore + replay
        assert res.makespan_seconds > clean.makespan_seconds

    def test_recovery_without_crashes_stays_dormant(self, workload):
        clean = run(workload)
        res = run(
            workload,
            fault_injector=FaultInjector(seed=9),
            recovery=self.recovery_config(),
        )
        assert res.total_restarts == 0
        assert res.makespan_seconds == clean.makespan_seconds


class TestMessageFaults:
    def test_loss_charges_retransmits(self, workload):
        clean = run(workload)
        inj = FaultInjector(seed=3, faults=[MessageLoss(rate=0.5)])
        lossy = run(workload, fault_injector=inj)
        assert lossy.total_lost_messages > 0
        assert lossy.makespan_seconds >= clean.makespan_seconds
        # compute is untouched: only the network drain grows
        for a, b in zip(lossy.node_results, clean.node_results):
            assert a.timeline.total_seconds == b.timeline.total_seconds
            assert a.comm_seconds >= b.comm_seconds

    def test_delay_stalls_drains(self, workload):
        clean = run(workload)
        inj = FaultInjector(
            faults=[MessageDelay(rate=1.0, delay_seconds=1e-4)]
        )
        delayed = run(workload, fault_injector=inj)
        assert delayed.total_lost_messages == 0
        slower = [
            r
            for r, c in zip(delayed.node_results, clean.node_results)
            if r.n_messages and r.comm_seconds > c.comm_seconds
        ]
        assert slower, "delays charged nowhere despite off-node messages"


def test_zero_fault_injector_is_identity(workload):
    clean = run(workload)
    armed = run(workload, fault_injector=FaultInjector(seed=9))
    assert armed.makespan_seconds == clean.makespan_seconds
    assert armed.total_lost_messages == 0
