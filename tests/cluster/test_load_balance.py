"""Tests for load-imbalance metrics."""

import math

import pytest

from repro.cluster.load_balance import imbalance_metrics
from repro.errors import ClusterConfigError


def test_perfect_balance():
    m = imbalance_metrics([10.0, 10.0, 10.0])
    assert m.imbalance == pytest.approx(1.0)
    assert m.efficiency == pytest.approx(1.0)
    assert m.cv == pytest.approx(0.0)
    assert m.idle_ranks == 0


def test_skewed_load():
    m = imbalance_metrics([30.0, 10.0, 20.0, 0.0])
    assert m.max_load == 30.0
    assert m.mean_load == 15.0
    assert m.imbalance == pytest.approx(2.0)
    assert m.efficiency == pytest.approx(0.5)
    assert m.idle_ranks == 1


def test_all_idle():
    m = imbalance_metrics([0.0, 0.0])
    assert m.imbalance == 1.0
    assert m.efficiency == 1.0


def test_single_loaded_rank():
    m = imbalance_metrics([5.0, 0.0, 0.0, 0.0, 0.0])
    assert m.imbalance == pytest.approx(5.0)


def test_cv_computation():
    m = imbalance_metrics([1.0, 3.0])
    assert m.cv == pytest.approx(math.sqrt(1.0) / 2.0)


def test_empty_rejected():
    with pytest.raises(ClusterConfigError):
        imbalance_metrics([])


def test_idle_ranks_tolerate_float_noise():
    """Regression: seconds-based loads carry float noise (setup charges,
    rounding), so a rank at ~1e-12 of the peak is idle; the old exact
    ``x == 0`` test undercounted it."""
    m = imbalance_metrics([10.0, 1e-11, 0.0])
    assert m.idle_ranks == 2


def test_idle_tolerance_zero_restores_exact_test():
    m = imbalance_metrics([10.0, 1e-11, 0.0], idle_tolerance=0.0)
    assert m.idle_ranks == 1


def test_idle_tolerance_scales_with_peak():
    # the cut is relative to the maximum load, not absolute
    m = imbalance_metrics([1e6, 1e-4, 0.0])
    assert m.idle_ranks == 2
    m = imbalance_metrics([1.0, 1e-4, 0.0])
    assert m.idle_ranks == 1


def test_negative_idle_tolerance_rejected():
    with pytest.raises(ClusterConfigError):
        imbalance_metrics([1.0], idle_tolerance=-1e-9)
