"""Tests for load-imbalance metrics."""

import math

import pytest

from repro.cluster.load_balance import imbalance_metrics
from repro.errors import ClusterConfigError


def test_perfect_balance():
    m = imbalance_metrics([10.0, 10.0, 10.0])
    assert m.imbalance == pytest.approx(1.0)
    assert m.efficiency == pytest.approx(1.0)
    assert m.cv == pytest.approx(0.0)
    assert m.idle_ranks == 0


def test_skewed_load():
    m = imbalance_metrics([30.0, 10.0, 20.0, 0.0])
    assert m.max_load == 30.0
    assert m.mean_load == 15.0
    assert m.imbalance == pytest.approx(2.0)
    assert m.efficiency == pytest.approx(0.5)
    assert m.idle_ranks == 1


def test_all_idle():
    m = imbalance_metrics([0.0, 0.0])
    assert m.imbalance == 1.0
    assert m.efficiency == 1.0


def test_single_loaded_rank():
    m = imbalance_metrics([5.0, 0.0, 0.0, 0.0, 0.0])
    assert m.imbalance == pytest.approx(5.0)


def test_cv_computation():
    m = imbalance_metrics([1.0, 3.0])
    assert m.cv == pytest.approx(math.sqrt(1.0) / 2.0)


def test_empty_rejected():
    with pytest.raises(ClusterConfigError):
        imbalance_metrics([])
