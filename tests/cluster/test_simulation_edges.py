"""Cluster simulation edge cases."""

import pytest

from repro.apps.workloads import SyntheticApplyWorkload
from repro.cluster.simulation import ClusterSimulation
from repro.dht.process_map import HashProcessMap, SubtreePartitionMap


@pytest.fixture(scope="module")
def tiny_workload():
    return SyntheticApplyWorkload(
        dim=2, k=6, rank=20, n_tasks=400, n_tree_leaves=64, seed=9
    )


def test_idle_ranks_report_zero_time(tiny_workload):
    """With a locality map and many ranks, some ranks get nothing; they
    must report empty timelines rather than fail."""
    nodes = 32
    sim = ClusterSimulation(
        nodes, SubtreePartitionMap(nodes, anchor_level=1), mode="cpu"
    )
    res = sim.run(tiny_workload.tasks)
    idle = [r for r in res.node_results if r.n_tasks == 0]
    assert idle, "expected at least one idle rank at 32 nodes"
    for r in idle:
        assert r.timeline.total_seconds == 0.0
        assert r.comm_seconds == 0.0
    assert res.imbalance.idle_ranks == len(idle)


def test_makespan_is_max_node_total(tiny_workload):
    sim = ClusterSimulation(4, HashProcessMap(4), mode="gpu")
    res = sim.run(tiny_workload.tasks)
    assert res.makespan_seconds == pytest.approx(
        max(r.total_seconds for r in res.node_results)
    )


def test_comm_fraction_bounded(tiny_workload):
    res = ClusterSimulation(4, HashProcessMap(4)).run(tiny_workload.tasks)
    assert 0.0 <= res.comm_fraction < 1.0


def test_more_streams_help_gpu_mode(tiny_workload):
    t1 = ClusterSimulation(
        2, HashProcessMap(2), mode="gpu", gpu_streams=1
    ).run(tiny_workload.tasks).makespan_seconds
    t5 = ClusterSimulation(
        2, HashProcessMap(2), mode="gpu", gpu_streams=5
    ).run(tiny_workload.tasks).makespan_seconds
    assert t5 < t1


def test_explicit_cpu_threads_override(tiny_workload):
    sim = ClusterSimulation(2, HashProcessMap(2), mode="cpu", cpu_threads=4)
    assert sim.cpu_threads == 4
    t4 = sim.run(tiny_workload.tasks).makespan_seconds
    t16 = ClusterSimulation(
        2, HashProcessMap(2), mode="cpu"
    ).run(tiny_workload.tasks).makespan_seconds
    assert t16 < t4


def test_empty_task_list():
    sim = ClusterSimulation(2, HashProcessMap(2))
    res = sim.run([])
    assert res.total_tasks == 0
    assert res.makespan_seconds == 0.0
