"""Tests for the cluster simulation."""

import pytest

from repro.apps.workloads import SyntheticApplyWorkload
from repro.cluster.simulation import ClusterSimulation
from repro.dht.process_map import HashProcessMap, SubtreePartitionMap
from repro.errors import ClusterConfigError


@pytest.fixture(scope="module")
def workload():
    return SyntheticApplyWorkload(
        dim=3, k=10, rank=60, n_tasks=3000, n_tree_leaves=256, seed=5
    )


def run(workload, nodes, **kwargs):
    pmap = kwargs.pop("pmap", None) or HashProcessMap(nodes)
    sim = ClusterSimulation(nodes, pmap, flush_interval=0.01, **kwargs)
    return sim.run(workload.tasks)


def test_all_tasks_assigned(workload):
    res = run(workload, 4)
    assert res.total_tasks == 3000
    assert sum(r.n_tasks for r in res.node_results) == 3000


def test_even_map_scales(workload):
    """Doubling nodes with the even map nearly halves the makespan."""
    t2 = run(workload, 2).makespan_seconds
    t4 = run(workload, 4).makespan_seconds
    assert 1.6 < t2 / t4 < 2.2


def test_hybrid_beats_cpu_only(workload):
    cpu = run(workload, 4, mode="cpu").makespan_seconds
    hybrid = run(workload, 4, mode="hybrid").makespan_seconds
    assert hybrid < cpu


def test_custom_kernel_beats_cublas_3d(workload):
    """The Tables III/IV comparison at cluster level."""
    custom = run(workload, 4, mode="gpu", gpu_kernel="custom").makespan_seconds
    cublas = run(workload, 4, mode="gpu", gpu_kernel="cublas").makespan_seconds
    assert 1.3 < cublas / custom < 3.5


def test_locality_map_less_balanced_than_hash(workload):
    hash_res = run(workload, 8)
    local_res = run(workload, 8, pmap=SubtreePartitionMap(8, anchor_level=1))
    assert local_res.imbalance.imbalance >= hash_res.imbalance.imbalance


def test_messages_counted(workload):
    res = run(workload, 4)
    assert res.total_messages > 0
    assert res.total_message_bytes > 0


def test_communication_is_not_bottleneck(workload):
    """The paper's claim, verified rather than assumed: un-hidden
    communication is a tiny fraction of the makespan."""
    res = run(workload, 8)
    assert res.comm_fraction < 0.05


def test_single_node_no_messages(workload):
    res = run(workload, 1)
    assert res.total_messages == 0


def test_rank_reduction_helps_cpu_mode(workload):
    plain = run(workload, 2, mode="cpu").makespan_seconds
    reduced = run(workload, 2, mode="cpu", rank_reduction=True).makespan_seconds
    assert 1.5 < plain / reduced < 2.6


def test_pmap_rank_count_must_match(workload):
    with pytest.raises(ClusterConfigError):
        ClusterSimulation(4, HashProcessMap(8))


def test_invalid_configs():
    with pytest.raises(ClusterConfigError):
        ClusterSimulation(0, HashProcessMap(1))
    with pytest.raises(ClusterConfigError):
        ClusterSimulation(2, HashProcessMap(2), gpu_kernel="opencl")


def test_cpu_mode_defaults_to_all_cores(workload):
    sim = ClusterSimulation(2, HashProcessMap(2), mode="cpu")
    assert sim.cpu_threads == 16
    sim_h = ClusterSimulation(2, HashProcessMap(2), mode="hybrid")
    assert sim_h.cpu_threads == 10
