"""Tests for the work-stealing scheduler (repro.cluster.stealing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.workloads import ClusterTask, SyntheticApplyWorkload
from repro.cluster.network import NetworkModel
from repro.cluster.simulation import ClusterSimulation
from repro.cluster.stealing import (
    StealingConfig,
    StealingEngine,
    locality_preferences,
)
from repro.dht.process_map import ProcessMap, SubtreePartitionMap
from repro.errors import ClusterConfigError
from repro.faults.injector import FaultInjector
from repro.faults.models import GpuFailure
from repro.lint.trace_check import find_migration_violations, find_violations
from repro.mra.key import Key
from repro.obs.dump import merge_order_log
from repro.obs.metrics import MetricsRegistry
from repro.recovery.policy import EveryNBatches
from repro.recovery.protocol import RecoveryConfig
from repro.runtime.task import TaskKind, WorkItem
from repro.runtime.trace import Tracer

KIND_A = TaskKind("apply", (3, 12))
KIND_B = TaskKind("apply", (3, 20))


class SlotMap(ProcessMap):
    """Test-only map: first translation component modulo ranks."""

    def owner(self, key):
        return key.translation[0] % self.n_ranks


def make_tasks(slots, kind=KIND_A):
    """One task per entry of ``slots``; entry s lands on rank s (SlotMap)."""
    tasks = []
    for i, slot in enumerate(slots):
        key = Key(3, (slot % 8, i % 8, 0))
        item = WorkItem(kind=kind, output_bytes=64)
        tasks.append(ClusterTask(key=key, neighbor=key, item=item))
    return tasks


def flat_cost(rank, tasks):
    del rank
    return 0.01 * len(tasks)


def run_engine(tasks, n_ranks, config, *, tracers=None, registry=None):
    engine = StealingEngine(
        SlotMap(n_ranks),
        NetworkModel(),
        config,
        flat_cost,
        rank_tracers=tracers,
        registry=registry,
    )
    return engine.run(tasks)


# -- configuration -----------------------------------------------------------------


def test_config_rejects_bad_knobs():
    with pytest.raises(ClusterConfigError):
        StealingConfig(chunk_size=0)
    with pytest.raises(ClusterConfigError):
        StealingConfig(min_victim_queue=0)
    with pytest.raises(ClusterConfigError):
        StealingConfig(steal_fraction=0.0)
    with pytest.raises(ClusterConfigError):
        StealingConfig(steal_fraction=1.5)
    with pytest.raises(ClusterConfigError):
        StealingConfig(request_bytes=-1)
    with pytest.raises(ClusterConfigError):
        StealingConfig(executor="magic")


def test_stealing_composes_with_fault_injection():
    # GPU failures reprice chunks on the affected rank; no rejection
    injector = FaultInjector(
        seed=3, faults=[GpuFailure(rank=1, permanent=True)]
    )
    workload = SyntheticApplyWorkload(
        dim=3, k=8, rank=40, n_tasks=24, n_tree_leaves=16, seed=7
    )
    sim = ClusterSimulation(
        2,
        SlotMap(2),
        stealing=StealingConfig(chunk_size=4, executor="analytic"),
        fault_injector=injector,
    )
    res = sim.run(workload.tasks)
    assert res.total_tasks == 24


def test_stealing_composes_with_recovery():
    # recovery armed without crashes: checkpoint writes are charged,
    # everything still completes exactly once
    workload = SyntheticApplyWorkload(
        dim=3, k=8, rank=40, n_tasks=24, n_tree_leaves=16, seed=7
    )
    sim = ClusterSimulation(
        2,
        SlotMap(2),
        stealing=StealingConfig(chunk_size=4, executor="analytic"),
        recovery=RecoveryConfig(policy=EveryNBatches(2)),
    )
    res = sim.run(workload.tasks)
    assert sum(r.n_tasks for r in res.node_results) == 24
    assert res.total_restarts == 0


def test_engine_rejects_crashes_without_recovery():
    from repro.faults.models import NodeCrash

    injector = FaultInjector(faults=[NodeCrash(rank=0, at=0.01)])
    engine = StealingEngine(
        SlotMap(2),
        NetworkModel(),
        StealingConfig(),
        flat_cost,
        injector=injector,
    )
    with pytest.raises(ClusterConfigError, match="recovery="):
        engine.run(make_tasks([0] * 8))


# -- the protocol ------------------------------------------------------------------


def test_idle_ranks_steal_from_the_loaded_rank():
    tasks = make_tasks([0] * 16)
    config = StealingConfig(chunk_size=2, min_victim_queue=2)
    static = run_engine(tasks, 4, StealingConfig(
        enabled=False, chunk_size=2, min_victim_queue=2))
    stolen = run_engine(tasks, 4, config)
    assert static.total_executed == 16
    assert stolen.total_executed == 16
    assert stolen.steals_granted > 0
    assert stolen.tasks_migrated > 0
    # the whole point: idle ranks pick up migrated work
    assert sum(1 for n in stolen.n_executed if n > 0) > 1
    assert stolen.makespan_seconds < static.makespan_seconds


def test_static_baseline_never_migrates():
    tasks = make_tasks([0, 0, 0, 0, 1, 1, 2, 2])
    outcome = run_engine(tasks, 4, StealingConfig(enabled=False))
    assert outcome.tasks_migrated == 0
    assert outcome.steals_attempted == 0
    assert outcome.n_executed == [4, 2, 2, 0]


def test_victim_denies_below_min_queue():
    # three thieves hit one victim at the same instant: the grants
    # shrink the queue below min_victim_queue, so the last is denied
    tasks = make_tasks([0] * 10)
    config = StealingConfig(chunk_size=1, min_victim_queue=5)
    outcome = run_engine(tasks, 4, config)
    assert outcome.steals_denied >= 1
    assert outcome.total_executed == 10


def test_outcome_accounting_is_consistent():
    tasks = make_tasks([0] * 12 + [1] * 2)
    config = StealingConfig(chunk_size=2, min_victim_queue=2)
    outcome = run_engine(tasks, 3, config)
    assert outcome.total_executed == sum(outcome.n_executed) == 14
    assert sum(outcome.n_chunks) >= outcome.total_executed // config.chunk_size
    assert outcome.max_queue_depth >= 12
    for busy, finish in zip(outcome.busy_seconds, outcome.finish_seconds):
        assert busy <= finish + 1e-12


def test_engine_is_deterministic():
    tasks = make_tasks([0] * 9 + [1] * 3)
    config = StealingConfig(chunk_size=2, min_victim_queue=2)
    tracers_a = {r: Tracer() for r in range(3)}
    tracers_b = {r: Tracer() for r in range(3)}
    a = run_engine(tasks, 3, config, tracers=tracers_a)
    b = run_engine(make_tasks([0] * 9 + [1] * 3), 3, config, tracers=tracers_b)
    assert a.n_executed == b.n_executed
    assert a.makespan_seconds == pytest.approx(b.makespan_seconds, abs=0.0)
    for rank in range(3):
        assert tracers_a[rank].log == tracers_b[rank].log


def test_trace_protocol_is_exactly_once():
    tasks = make_tasks([0] * 14 + [1] * 2, kind=KIND_A) + make_tasks(
        [0] * 4, kind=KIND_B
    )
    tracers = {r: Tracer() for r in range(4)}
    config = StealingConfig(chunk_size=2, min_victim_queue=2)
    outcome = run_engine(tasks, 4, config, tracers=tracers)
    assert outcome.total_executed == len(tasks)
    logs = {r: merge_order_log(t.log) for r, t in tracers.items()}
    for rank, log in logs.items():
        assert find_violations(log) == [], f"rank {rank}"
    assert find_migration_violations(logs) == []
    accumulated = [
        item
        for log in logs.values()
        for rec in log
        if rec.op == "accumulate"
        for item in rec.ids
    ]
    assert sorted(accumulated) == sorted(f"t{i}" for i in range(len(tasks)))


def test_parked_ranks_wake_without_a_full_scan(monkeypatch):
    # regression for the parked-rank index: thieves that find an empty
    # board park on a fresh event (the engine's only direct env.event()
    # call) and a later board gain must wake them.  A lost wakeup would
    # leave the run stuck with tasks remaining; a wake-order change
    # would break determinism against the pinned goldens.
    import repro.cluster.stealing as stealing_mod

    parks = {"n": 0}

    class CountingEnvironment(stealing_mod.Environment):
        def event(self):
            parks["n"] += 1
            return super().event()

    monkeypatch.setattr(stealing_mod, "Environment", CountingEnvironment)
    tasks = make_tasks([0] * 32)
    config = StealingConfig(
        chunk_size=1, min_victim_queue=4, steal_fraction=0.5
    )
    tracers = {r: Tracer() for r in range(8)}
    outcome = run_engine(tasks, 8, config, tracers=tracers)
    assert parks["n"] > 0, "scenario never exercised the parked index"
    assert outcome.total_executed == 32
    assert sum(1 for n in outcome.n_executed if n > 0) > 1
    for rank, tracer in tracers.items():
        assert find_violations(merge_order_log(tracer.log)) == [], (
            f"rank {rank}"
        )
    # waking from the index must stay deterministic run-to-run
    tracers_b = {r: Tracer() for r in range(8)}
    again = run_engine(make_tasks([0] * 32), 8, config, tracers=tracers_b)
    assert again.n_executed == outcome.n_executed
    for rank in range(8):
        assert tracers[rank].log == tracers_b[rank].log


def test_metrics_are_published():
    tasks = make_tasks([0] * 12)
    registry = MetricsRegistry()
    config = StealingConfig(chunk_size=2, min_victim_queue=2)
    outcome = run_engine(tasks, 3, config, registry=registry)
    assert registry.counter("cluster.steal.requests").total >= 1
    grants = registry.counter("cluster.steal.grants").total
    assert grants == pytest.approx(float(outcome.steals_granted))
    migrated = registry.counter("cluster.steal.tasks_migrated").total
    assert migrated == pytest.approx(float(outcome.tasks_migrated))
    assert registry.histogram("cluster.steal.victim_queue_depth").count >= 1


def test_locality_preferences_point_at_adjacent_owners():
    # two adjacent level-1 boxes owned by different ranks prefer each
    # other; an isolated far rank has no locality preference
    tasks = [
        ClusterTask(key=Key(1, (0,)), neighbor=Key(1, (0,)),
                    item=WorkItem(kind=KIND_A)),
        ClusterTask(key=Key(1, (1,)), neighbor=Key(1, (1,)),
                    item=WorkItem(kind=KIND_A)),
    ]
    prefs = locality_preferences(SlotMap(2), tasks)
    assert prefs == {0: (1,), 1: (0,)}


def test_adjacent_ranks_query():
    pmap = SlotMap(4)
    keys = [Key(2, (0, 0)), Key(2, (1, 0)), Key(2, (3, 3))]
    assert pmap.adjacent_ranks(0, keys) == (1,)
    assert pmap.adjacent_ranks(1, keys) == (0,)
    # rank 3's box at (3,3) has no neighbour in the key set
    assert pmap.adjacent_ranks(3, keys) == ()


# -- simulation integration --------------------------------------------------------


def test_cluster_simulation_stealing_end_to_end():
    workload = SyntheticApplyWorkload(
        dim=3, k=6, rank=30, n_tasks=48, n_tree_leaves=12, seed=9, skew=4.0
    )
    pmap = SubtreePartitionMap(4, anchor_level=1)

    def run(enabled):
        sim = ClusterSimulation(
            4,
            pmap,
            mode="hybrid",
            stealing=StealingConfig(
                enabled=enabled, chunk_size=3, executor="analytic"
            ),
        )
        return sim.run(workload.tasks)

    static = run(False)
    stolen = run(True)
    assert static.total_tasks == stolen.total_tasks == 48
    assert stolen.makespan_seconds < static.makespan_seconds
    assert stolen.imbalance is not None and static.imbalance is not None
    assert stolen.imbalance.imbalance < static.imbalance.imbalance
    assert sum(r.n_tasks for r in stolen.node_results) == 48


def test_runtime_and_analytic_executors_agree_roughly():
    workload = SyntheticApplyWorkload(
        dim=3, k=6, rank=30, n_tasks=24, n_tree_leaves=8, seed=9, skew=3.0
    )
    pmap = SubtreePartitionMap(3, anchor_level=1)
    results = {}
    for executor in ("runtime", "analytic"):
        sim = ClusterSimulation(
            3,
            pmap,
            mode="hybrid",
            stealing=StealingConfig(chunk_size=3, executor=executor),
        )
        results[executor] = sim.run(workload.tasks).makespan_seconds
    ratio = results["analytic"] / results["runtime"]
    assert 0.3 < ratio < 3.0


# -- exactly-once as a property ----------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    slots=st.lists(st.integers(min_value=0, max_value=4), min_size=1,
                   max_size=24),
    n_ranks=st.integers(min_value=2, max_value=5),
    chunk_size=st.integers(min_value=1, max_value=4),
    min_victim_queue=st.integers(min_value=1, max_value=4),
    steal_fraction=st.floats(min_value=0.25, max_value=1.0),
)
def test_migration_preserves_exactly_once(
    slots, n_ranks, chunk_size, min_victim_queue, steal_fraction
):
    """Whatever the placement and knobs: every task executes exactly
    once, on some rank, and the cross-rank migration ledger is clean."""
    tasks = make_tasks(slots)
    config = StealingConfig(
        chunk_size=chunk_size,
        min_victim_queue=min_victim_queue,
        steal_fraction=steal_fraction,
    )
    tracers = {r: Tracer() for r in range(n_ranks)}
    outcome = run_engine(tasks, n_ranks, config, tracers=tracers)
    assert outcome.total_executed == len(tasks)
    logs = {r: merge_order_log(t.log) for r, t in tracers.items()}
    for rank, log in logs.items():
        assert find_violations(log) == [], f"rank {rank}"
    assert find_migration_violations(logs) == []
    accumulated = [
        item
        for log in logs.values()
        for rec in log
        if rec.op == "accumulate"
        for item in rec.ids
    ]
    assert sorted(accumulated) == sorted(f"t{i}" for i in range(len(tasks)))
