"""Tests for the interconnect model."""

import pytest

from repro.cluster.network import NetworkModel
from repro.errors import ClusterConfigError


def test_drain_time_components():
    net = NetworkModel(
        injection_bytes_per_second=1e9, latency_seconds=1e-6, overlap_fraction=0.0
    )
    t = net.drain_seconds(10, 1_000_000_000)
    assert t == pytest.approx(10 * 1e-6 + 1.0)


def test_overlap_hides_communication():
    raw = NetworkModel(overlap_fraction=0.0).drain_seconds(100, 10**9)
    hidden = NetworkModel(overlap_fraction=0.9).drain_seconds(100, 10**9)
    assert hidden == pytest.approx(0.1 * raw)


def test_zero_messages_zero_time():
    assert NetworkModel().drain_seconds(0, 0) == 0.0


def test_validation():
    with pytest.raises(ClusterConfigError):
        NetworkModel(injection_bytes_per_second=0.0)
    with pytest.raises(ClusterConfigError):
        NetworkModel(overlap_fraction=1.1)
    with pytest.raises(ClusterConfigError):
        NetworkModel(overlap_fraction=-0.1)
    with pytest.raises(ClusterConfigError):
        NetworkModel().drain_seconds(-1, 0)


def test_full_overlap_is_free():
    # 1.0 means communication is entirely hidden under compute
    net = NetworkModel(overlap_fraction=1.0)
    assert net.drain_seconds(100, 10**9) == 0.0
