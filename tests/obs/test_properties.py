"""Property-based tests: export round-trips and path invariants.

Two families, as promised in docs/OBSERVABILITY.md:

- serialization is lossless — dump -> JSON -> dump preserves every
  interval, log record and metric sample, and the Chrome export carries
  every interval as an ``X`` slice and every log record as an ``i``
  instant;
- the critical path is a partition of ``[0, makespan]`` whose busy
  length is at most the makespan and at least the largest single-stage
  on-path total.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.critical_path import IDLE, critical_path
from repro.obs.dump import RankDump, RunDump
from repro.obs.export import export_chrome, validate_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.runtime.trace import LANES, LOG_OPS, RuntimeLogRecord, TraceEvent

_instant = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
_duration = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


@st.composite
def trace_events(draw):
    start = draw(_instant)
    return TraceEvent(
        category=draw(st.sampled_from(LANES + ("network",))),
        label=draw(st.sampled_from(["mtxm", "kernel", "h2d", "snapshot"])),
        start=start,
        end=start + draw(_duration),
        batch=draw(st.integers(min_value=-1, max_value=5)),
    )


@st.composite
def log_records(draw):
    return RuntimeLogRecord(
        op=draw(st.sampled_from(LOG_OPS)),
        at=draw(_instant),
        kind=draw(st.sampled_from(["", "integral", "apply"])),
        ids=tuple(
            draw(
                st.lists(
                    st.sampled_from(["w0", "w1", "w2", "b(0,1)"]), max_size=3
                )
            )
        ),
        attempt=draw(st.integers(min_value=0, max_value=3)),
        batch=draw(st.integers(min_value=-1, max_value=5)),
    )


@st.composite
def run_dumps(draw):
    ranks = []
    for rank in range(draw(st.integers(min_value=1, max_value=2))):
        ranks.append(
            RankDump(
                rank=rank,
                events=draw(st.lists(trace_events(), max_size=12)),
                log=draw(st.lists(log_records(), max_size=8)),
                summary={"total_seconds": draw(_instant)},
            )
        )
    registry = MetricsRegistry()
    for at, value in draw(
        st.lists(st.tuples(_instant, _duration), max_size=5)
    ):
        registry.counter("prop.counter").inc(at, value)
        registry.gauge("prop.gauge").set(at, value)
        registry.histogram("prop.hist").observe(at, value)
    dump = RunDump(meta={"scenario": "property"}, ranks=ranks)
    dump.registry = registry
    return dump


@given(run_dumps())
@settings(max_examples=30, deadline=None)
def test_dump_round_trip_is_lossless(dump):
    rebuilt = RunDump.loads(dump.dumps())
    assert rebuilt.to_dict() == dump.to_dict()
    # and the canonical bytes are a fixed point of the round trip
    assert rebuilt.dumps() == dump.dumps()


@given(run_dumps())
@settings(max_examples=30, deadline=None)
def test_export_preserves_every_interval_and_record(dump):
    text = export_chrome(dump)
    trace = json.loads(text)
    validate_chrome_trace(trace)
    for rank in dump.ranks:
        slices = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == rank.rank
        ]
        assert sorted(
            (s["cat"], s["name"], s["ts"], s["dur"]) for s in slices
        ) == sorted(
            (e.category, e.label, e.start * 1e6, e.duration * 1e6)
            for e in rank.events
        )
        instants = [
            e for e in trace["traceEvents"]
            if e["ph"] == "i" and e["pid"] == rank.rank
        ]
        assert sorted((i["name"], i["ts"]) for i in instants) == sorted(
            (r.op, r.at * 1e6) for r in rank.log
        )


@given(st.lists(trace_events(), min_size=1, max_size=25))
@settings(max_examples=50, deadline=None)
def test_critical_path_partitions_the_makespan(events):
    path = critical_path(events)
    tol = 1e-6 * max(1.0, path.makespan)
    assert path.makespan == max(e.end for e in events)
    # the chain plus idle gaps tiles [0, makespan]
    assert abs(sum(path.breakdown.values()) - path.makespan) < tol
    assert path.segments[0].start <= tol
    assert abs(path.segments[-1].end - path.makespan) < tol
    for left, right in zip(path.segments, path.segments[1:]):
        assert abs(left.end - right.start) < tol


@given(st.lists(trace_events(), min_size=1, max_size=25), _duration)
@settings(max_examples=50, deadline=None)
def test_critical_path_length_bounds(events, extra):
    makespan = max(e.end for e in events) + extra
    path = critical_path(events, makespan=makespan)
    tol = 1e-6 * max(1.0, makespan)
    busy = {s: t for s, t in path.breakdown.items() if s != IDLE}
    assert path.length <= makespan + tol
    assert path.length + tol >= max(busy.values(), default=0.0)
    # overlap estimates never promise below the busiest other stage
    for stage in path.union_busy:
        others = [
            b for s, b in path.union_busy.items() if s != stage
        ]
        assert path.overlap_estimate(stage) + tol >= max(others, default=0.0)
