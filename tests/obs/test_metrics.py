"""Unit tests for the simulated-clock metrics registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates_and_samples(self):
        c = Counter("batches")
        c.inc(0.1)
        c.inc(0.5, 2.0)
        assert c.total == 3.0
        assert c.samples == [(0.1, 1.0), (0.5, 3.0)]

    def test_negative_increment_rejected(self):
        c = Counter("batches")
        with pytest.raises(MetricsError, match="must be >= 0"):
            c.inc(0.1, -1.0)
        assert c.total == 0.0 and c.samples == []


class TestGauge:
    def test_set_tracks_level(self):
        g = Gauge("inflight")
        g.set(0.1, 3)
        g.set(0.2, 1)
        assert g.value == 1.0
        assert g.samples == [(0.1, 3.0), (0.2, 1.0)]


class TestHistogram:
    def test_summary(self):
        h = Histogram("latency")
        for at, v in [(0.1, 2.0), (0.2, 4.0), (0.3, 6.0)]:
            h.observe(at, v)
        assert h.count == 3
        assert h.summary() == {
            "count": 3, "total": 12.0, "min": 2.0, "max": 6.0, "mean": 4.0,
        }

    def test_empty_summary(self):
        assert Histogram("latency").summary()["count"] == 0


class TestRegistry:
    def test_create_on_first_use_and_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_bool_reflects_registered_metrics(self):
        reg = MetricsRegistry()
        assert not MetricsRegistry()
        reg.counter("a")
        assert reg

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricsError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(MetricsError, match="already registered"):
            reg.histogram("x")

    def test_sorted_views(self):
        reg = MetricsRegistry()
        reg.counter("zeta")
        reg.counter("alpha")
        assert list(reg.counters) == ["alpha", "zeta"]

    def test_shifted_offsets_every_sample(self):
        reg = MetricsRegistry()
        view = reg.shifted(10.0)
        view.counter("c").inc(0.5)
        view.gauge("g").set(0.25, 7)
        view.histogram("h").observe(0.75, 3.0)
        assert reg.counter("c").samples == [(10.5, 1.0)]
        assert reg.gauge("g").samples == [(10.25, 7.0)]
        assert reg.histogram("h").samples == [(10.75, 3.0)]

    def test_shifted_negative_offset_rejected(self):
        with pytest.raises(MetricsError, match="offset"):
            MetricsRegistry().shifted(-1.0)

    def test_merge_counters_reaccumulate(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(0.1, 1.0)
        a.counter("c").inc(0.5, 1.0)
        b.counter("c").inc(0.3, 2.0)
        a.merge_from(b)
        merged = a.counter("c")
        assert merged.total == 4.0
        assert merged.samples == [(0.1, 1.0), (0.3, 3.0), (0.5, 4.0)]

    def test_merge_gauges_and_histograms_interleave(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(0.1, 1)
        b.gauge("g").set(0.2, 5)
        b.histogram("h").observe(0.1, 2.0)
        a.histogram("h").observe(0.3, 4.0)
        a.merge_from(b)
        assert a.gauge("g").samples == [(0.1, 1.0), (0.2, 5.0)]
        assert a.gauge("g").value == 5.0
        assert a.histogram("h").samples == [(0.1, 2.0), (0.3, 4.0)]

    def test_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(0.125, 2.0)
        reg.gauge("g").set(0.25, 3.5)
        reg.histogram("h").observe(0.5, 1.25)
        rebuilt = MetricsRegistry.from_dict(reg.to_dict())
        assert rebuilt.to_dict() == reg.to_dict()
        assert rebuilt.counter("c").total == 2.0
        assert rebuilt.gauge("g").value == 3.5
        assert rebuilt.histogram("h").count == 1
