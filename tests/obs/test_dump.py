"""Unit tests for canonical trace dumps."""

import pytest

from repro.obs.dump import (
    DUMP_SCHEMA,
    DUMP_VERSION,
    DumpError,
    RankDump,
    RunDump,
    canonicalize_log,
    capture_rank,
    timeline_summary,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.scenarios import run_scenario
from repro.runtime.trace import RuntimeLogRecord, TraceEvent, Tracer


def _rec(op, at, ids, batch=-1, kind="", attempt=0):
    return RuntimeLogRecord(
        op=op, at=at, kind=kind, ids=tuple(ids), attempt=attempt, batch=batch
    )


class TestCanonicalizeLog:
    def test_submit_order_names(self):
        # memory-address-like ids become w<n> in first-submission order
        log = [
            _rec("submit", 0.1, [140_001]),
            _rec("submit", 0.2, [140_077]),
            _rec("flush", 0.3, [140_077, 140_001], batch=0),
        ]
        out = canonicalize_log(log)
        assert out[0].ids == ("w0",)
        assert out[1].ids == ("w1",)
        assert out[2].ids == ("w1", "w0")

    def test_unknown_ints_and_non_ints(self):
        log = [
            _rec("submit", 0.1, [7]),
            _rec("block_transfer", 0.2, [((3, 1), 2), 99]),
        ]
        out = canonicalize_log(log)
        assert out[1].ids == ("((3, 1), 2)", "u0")

    def test_original_records_untouched(self):
        log = [_rec("submit", 0.1, [42])]
        canonicalize_log(log)
        assert log[0].ids == (42,)


class TestRankDump:
    def test_dict_round_trip(self):
        rd = RankDump(
            rank=3,
            events=[TraceEvent("cpu", "mtxm", 0.0, 0.5, batch=2)],
            log=[_rec("flush", 0.25, ["w0"], batch=2, kind="k", attempt=1)],
            summary={"total_seconds": 0.5, "n_tasks": 1},
        )
        rebuilt = RankDump.from_dict(rd.to_dict())
        assert rebuilt.to_dict() == rd.to_dict()
        assert rebuilt.events[0].batch == 2
        assert rebuilt.log[0].attempt == 1


class TestRunDump:
    def _dump(self):
        rd = RankDump(
            rank=0,
            events=[TraceEvent("gpu", "kernel", 0.0, 1.5)],
            summary={"total_seconds": 2.0},
        )
        return RunDump(meta={"scenario": "synthetic"}, ranks=[rd])

    def test_makespan_is_max_of_summary_and_events(self):
        dump = self._dump()
        assert dump.makespan == 2.0
        dump.ranks[0].events.append(TraceEvent("gpu", "late", 2.0, 3.0))
        assert dump.makespan == 3.0

    def test_rank_dump_lookup(self):
        dump = self._dump()
        assert dump.rank_dump(0).rank == 0
        with pytest.raises(DumpError, match="no rank 5"):
            dump.rank_dump(5)

    def test_schema_header(self):
        raw = self._dump().to_dict()
        assert raw["schema"] == DUMP_SCHEMA
        assert raw["version"] == DUMP_VERSION

    def test_bad_schema_rejected(self):
        raw = self._dump().to_dict()
        raw["schema"] = "something-else"
        with pytest.raises(DumpError, match="not a repro-obs-dump"):
            RunDump.from_dict(raw)

    def test_bad_version_rejected(self):
        raw = self._dump().to_dict()
        raw["version"] = DUMP_VERSION + 1
        with pytest.raises(DumpError, match="unsupported dump version"):
            RunDump.from_dict(raw)

    def test_invalid_json_rejected(self):
        with pytest.raises(DumpError, match="not valid JSON"):
            RunDump.loads("{nope")

    def test_save_load_round_trip(self, tmp_path):
        dump = self._dump()
        dump.registry = MetricsRegistry()
        dump.registry.counter("c").inc(0.5, 2.0)
        path = tmp_path / "run.json"
        dump.save(str(path))
        loaded = RunDump.load(str(path))
        assert loaded.to_dict() == dump.to_dict()
        # canonical text is stable through a round trip too
        assert loaded.dumps() == dump.dumps()

    def test_capture_rank_canonicalizes(self):
        tracer = Tracer()
        tracer.record("cpu", "work", 0.0, 1.0)
        tracer.log_submit("k", 123456, 0.0)
        rd = capture_rank(4, tracer, {"total_seconds": 1.0})
        assert rd.rank == 4
        assert rd.log[0].ids == ("w0",)
        assert rd.summary == {"total_seconds": 1.0}


class TestTimelineSummary:
    def test_scenario_summary_fields(self):
        run = run_scenario("pipelined")
        summary = run.dump.ranks[0].summary
        assert summary["n_tasks"] == 48
        assert summary["total_seconds"] == pytest.approx(run.makespan)
        assert summary["gpu_busy"] > 0

    def test_absent_fields_skipped(self):
        class Minimal:
            total_seconds = 1.0

        assert timeline_summary(Minimal()) == {"total_seconds": 1.0}


class TestCheckpointSegments:
    def test_flush_batches_unique_across_segments(self):
        # the recovery path re-runs the runtime on a fresh segment
        # clock; the OffsetTracer batch offset must keep global batch
        # indices unique or the dump's flow arrows collapse
        run = run_scenario("checkpoint")
        assert run.extras["restarts"] >= 1
        flushes = [
            rec.batch
            for rec in run.dump.ranks[0].log
            if rec.op == "flush"
        ]
        assert len(flushes) == len(set(flushes))
        # rollback/restore records from the crash made it into the log
        ops = {rec.op for rec in run.dump.ranks[0].log}
        assert {"rollback", "restore", "checkpoint"} <= ops
