"""Golden-trace regression suite.

Every canonical scenario is executed, exported to Chrome-trace JSON,
and compared byte-for-byte against the committed fixture under
``tests/obs/golden/``.  The simulation is a pure function of its seeds,
so any diff means the timeline itself changed — which is either a bug
or an intentional behaviour change that must be reviewed and committed:

    PYTHONPATH=src python -m pytest tests/obs/test_golden_traces.py \
        --update-golden

regenerates the fixtures (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import difflib
import json
from pathlib import Path

import pytest

from repro.obs.export import export_chrome, validate_chrome_trace
from repro.obs.scenarios import SCENARIOS, run_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"

#: diff lines shown before truncating the assertion message
_DIFF_LINES = 40


def _diff(expected: str, actual: str, name: str) -> str:
    lines = list(
        difflib.unified_diff(
            expected.splitlines(keepends=True),
            actual.splitlines(keepends=True),
            fromfile=f"golden/{name}",
            tofile=f"current/{name}",
        )
    )
    shown = "".join(lines[:_DIFF_LINES])
    if len(lines) > _DIFF_LINES:
        shown += f"... ({len(lines) - _DIFF_LINES} more diff lines)\n"
    return shown


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_golden_trace(scenario, update_golden):
    golden_path = GOLDEN_DIR / f"{scenario}.trace.json"
    exported = export_chrome(run_scenario(scenario).dump)
    if update_golden:
        golden_path.write_text(exported, encoding="utf-8")
        return
    assert golden_path.exists(), (
        f"missing golden fixture {golden_path}; generate it with "
        f"pytest tests/obs/test_golden_traces.py --update-golden"
    )
    expected = golden_path.read_text(encoding="utf-8")
    assert exported == expected, (
        f"{scenario!r} trace diverged from its golden fixture — the "
        f"simulated timeline changed.  If intentional, regenerate with "
        f"--update-golden and review the diff:\n"
        + _diff(expected, exported, f"{scenario}.trace.json")
    )


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_export_is_repeatable_and_valid(scenario):
    # the acceptance bar: byte-identical across repeat runs, schema-valid
    first = export_chrome(run_scenario(scenario).dump)
    second = export_chrome(run_scenario(scenario).dump)
    assert first == second
    validate_chrome_trace(json.loads(first))


def test_every_scenario_has_a_golden_fixture():
    committed = {p.name for p in GOLDEN_DIR.glob("*.trace.json")}
    expected = {f"{name}.trace.json" for name in SCENARIOS}
    assert committed == expected
