"""The pipeline-ablation conclusion, re-derived from the trace alone.

The paper's ablation argues the ~1.4x pipelining win comes from hiding
CPU-side batch preparation behind GPU execution.  The critical-path
analyzer must reach the same conclusion without being told: the
serialized run's chain is cpu-bound, its overlap estimate predicts (a
lower bound on) the pipelined win, and the pipelined run's chain is
gpu-bound.
"""

import pytest

from repro.experiments import REGISTRY
from repro.experiments.profiling import run_pipeline_profile
from repro.obs.critical_path import critical_path_for_dump
from repro.obs.scenarios import run_scenario


@pytest.fixture(scope="module")
def profile():
    return run_pipeline_profile(0.4)


def test_registered_as_experiment():
    assert REGISTRY["profile-pipeline"] is run_pipeline_profile


def test_serialized_chain_is_cpu_bound(profile):
    assert profile.data["serialized_bound_stage"] == "cpu"


def test_pipelined_chain_is_gpu_bound(profile):
    assert profile.data["pipelined_bound_stage"] == "gpu"


def test_speedup_matches_the_ablation(profile):
    # paper's ablation band: ~1.4x from overlapping CPU prep with GPU
    assert 1.2 < profile.data["speedup"] < 1.6


def test_overlap_estimate_is_a_sound_prediction(profile):
    # the serialized trace alone predicts a real win, and never more
    # than the pipeline actually delivers (it is a first-order bound)
    predicted = profile.data["predicted_speedup"]
    assert 1.1 < predicted
    assert predicted <= profile.data["speedup"] + 0.05


def test_report_includes_per_configuration_paths(profile):
    assert len(profile.extra_tables) == 2
    note = "\n".join(profile.table.notes)
    assert "cpu-bound" in note


def test_scenarios_tell_the_same_story():
    # the golden scenarios reproduce the conclusion at fixture scale
    serialized = critical_path_for_dump(run_scenario("serialized").dump)
    pipelined = critical_path_for_dump(run_scenario("pipelined").dump)
    assert serialized.bound_stage == "cpu"
    assert serialized.share("cpu") > 0.5
    assert pipelined.bound_stage == "gpu"
    assert pipelined.share("gpu") > 0.5
    assert serialized.makespan / pipelined.makespan > 1.2
