"""Unit tests for the critical-path analyzer."""

import pytest

from repro.obs.critical_path import (
    IDLE,
    CriticalPathError,
    critical_path,
    critical_path_for_dump,
)
from repro.obs.dump import RankDump, RunDump
from repro.runtime.trace import TraceEvent


def _e(category, label, start, end, batch=-1):
    return TraceEvent(category, label, start, end, batch)


class TestChainWalk:
    def test_simple_chain(self):
        # cpu feeds pcie feeds gpu, back to back
        path = critical_path([
            _e("cpu", "pack", 0.0, 1.0),
            _e("pcie", "h2d", 1.0, 1.5),
            _e("gpu", "kernel", 1.5, 3.0),
        ])
        assert [s.stage for s in path.segments] == ["cpu", "pcie", "gpu"]
        assert path.makespan == 3.0
        assert path.length == pytest.approx(3.0)
        assert path.bound_stage == "gpu"
        assert path.breakdown == {"cpu": 1.0, "gpu": 1.5, "pcie": 0.5}

    def test_picks_latest_ending_predecessor(self):
        # two candidates end before the gpu starts; the later one is the
        # dependency the run actually waited on
        path = critical_path([
            _e("cpu", "short", 0.0, 0.4),
            _e("cpu", "long", 0.0, 1.0),
            _e("gpu", "kernel", 1.0, 2.0),
        ])
        assert [s.label for s in path.segments] == ["long", "kernel"]

    def test_idle_gap_becomes_segment(self):
        # nothing completes between 1.0 and 1.5 (a flush-interval wait)
        path = critical_path([
            _e("cpu", "work", 0.0, 1.0),
            _e("gpu", "kernel", 1.5, 2.0),
        ])
        assert [s.stage for s in path.segments] == ["cpu", IDLE, "gpu"]
        assert path.breakdown[IDLE] == pytest.approx(0.5)
        assert path.length == pytest.approx(1.5)

    def test_leading_idle_to_time_zero(self):
        path = critical_path([_e("gpu", "kernel", 2.0, 3.0)])
        assert [s.stage for s in path.segments] == [IDLE, "gpu"]
        assert path.segments[0].start == 0.0

    def test_trailing_drain_from_makespan(self):
        path = critical_path(
            [_e("gpu", "kernel", 0.0, 1.0)], makespan=1.25
        )
        assert path.segments[-1].stage == IDLE
        assert path.segments[-1].label == "drain"
        assert sum(path.breakdown.values()) == pytest.approx(1.25)

    def test_partition_covers_makespan(self):
        path = critical_path([
            _e("cpu", "a", 0.0, 1.0),
            _e("cpu", "b", 0.2, 0.9),
            _e("pcie", "x", 1.0, 1.2),
            _e("gpu", "k", 1.4, 2.5),
        ])
        assert sum(path.breakdown.values()) == pytest.approx(path.makespan)
        for left, right in zip(path.segments, path.segments[1:]):
            assert left.end == pytest.approx(right.start)

    def test_zero_duration_events_terminate(self):
        path = critical_path([
            _e("cpu", "tick", 0.5, 0.5),
            _e("cpu", "tock", 0.5, 0.5),
            _e("gpu", "k", 0.5, 1.0),
        ])
        assert path.makespan == 1.0


class TestErrors:
    def test_empty_trace_rejected(self):
        with pytest.raises(CriticalPathError, match="empty trace"):
            critical_path([])

    def test_makespan_before_latest_end_rejected(self):
        with pytest.raises(CriticalPathError, match="precedes"):
            critical_path([_e("cpu", "a", 0.0, 2.0)], makespan=1.0)


class TestAnalysis:
    def _path(self):
        # serialized-looking run: cpu on the path, gpu underneath
        return critical_path([
            _e("cpu", "a", 0.0, 2.0),
            _e("gpu", "k0", 0.5, 1.0),
            _e("cpu", "b", 2.0, 4.0),
            _e("gpu", "k1", 2.5, 3.0),
        ])

    def test_share_and_bound(self):
        path = self._path()
        assert path.bound_stage == "cpu"
        assert path.share("cpu") == pytest.approx(1.0)
        assert path.share("gpu") == 0.0

    def test_union_busy_merges_overlaps(self):
        path = critical_path([
            _e("cpu", "a", 0.0, 2.0),
            _e("cpu", "b", 1.0, 3.0),
        ])
        assert path.union_busy["cpu"] == pytest.approx(3.0)
        assert path.slack["cpu"] == pytest.approx(0.0)

    def test_overlap_estimate_floors_at_other_stages(self):
        path = self._path()
        # naively removing all cpu time would leave 0; the gpu still has
        # 1.0s of union work, so the estimate floors there
        assert path.overlap_estimate("cpu") == pytest.approx(1.0)

    def test_what_if_removes_on_path_time(self):
        path = self._path()
        assert path.what_if["cpu"] == pytest.approx(0.0)
        assert path.what_if["gpu"] == pytest.approx(4.0)

    def test_bound_stage_tie_breaks_by_name(self):
        path = critical_path([
            _e("cpu", "a", 0.0, 1.0),
            _e("gpu", "k", 1.0, 2.0),
        ])
        assert path.breakdown["cpu"] == path.breakdown["gpu"]
        # exact tie: the alphabetically first stage wins, deterministically
        assert path.bound_stage == "cpu"


class TestForDump:
    def _dump(self):
        fast = RankDump(rank=0, events=[_e("cpu", "a", 0.0, 1.0)],
                        summary={"total_seconds": 1.0})
        slow = RankDump(rank=1, events=[_e("gpu", "k", 0.0, 3.0)],
                        summary={"total_seconds": 3.0})
        return RunDump(ranks=[fast, slow])

    def test_picks_bound_rank(self):
        path = critical_path_for_dump(self._dump())
        assert path.makespan == 3.0
        assert path.bound_stage == "gpu"

    def test_explicit_rank(self):
        path = critical_path_for_dump(self._dump(), rank=0)
        assert path.makespan == 1.0
        assert path.bound_stage == "cpu"

    def test_no_events_rejected(self):
        with pytest.raises(CriticalPathError, match="no traced events"):
            critical_path_for_dump(RunDump(ranks=[RankDump(rank=0)]))
        with pytest.raises(CriticalPathError, match="rank 7"):
            critical_path_for_dump(self._dump(), rank=7)
