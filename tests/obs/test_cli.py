"""End-to-end tests of the ``python -m repro.obs`` CLI."""

import json

from repro.obs.cli import main
from repro.obs.dump import RunDump
from repro.obs.export import validate_chrome_trace


class TestRecord:
    def test_record_to_file(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert main(["record", "pipelined", "-o", str(out)]) == 0
        dump = RunDump.load(str(out))
        assert dump.meta["scenario"] == "pipelined"
        assert "recorded scenario" in capsys.readouterr().out

    def test_record_to_stdout(self, capsys):
        assert main(["record", "cluster"]) == 0
        dump = RunDump.loads(capsys.readouterr().out)
        assert [rd.rank for rd in dump.ranks] == [0, 1]


class TestExport:
    def test_export_scenario_to_file(self, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["export", "serialized", "-o", str(out)]) == 0
        validate_chrome_trace(json.loads(out.read_text()))

    def test_export_byte_identical_across_invocations(self, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["export", "pipelined", "-o", str(first)]) == 0
        assert main(["export", "pipelined", "-o", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_export_reads_saved_dump(self, tmp_path, capsys):
        dump_path = tmp_path / "run.json"
        assert main(["record", "faulty", "-o", str(dump_path)]) == 0
        capsys.readouterr()
        assert main(["export", str(dump_path)]) == 0
        trace = json.loads(capsys.readouterr().out)
        validate_chrome_trace(trace)
        assert trace["otherData"]["meta"]["scenario"] == "faulty"


class TestCriticalPath:
    def test_renders_stage_table(self, capsys):
        assert main(["critical-path", "serialized"]) == 0
        out = capsys.readouterr().out
        assert "Critical path — serialized" in out
        assert "cpu" in out and "gpu" in out

    def test_rank_selector(self, tmp_path, capsys):
        dump_path = tmp_path / "run.json"
        assert main(["record", "cluster", "-o", str(dump_path)]) == 0
        assert main(["critical-path", str(dump_path), "--rank", "1"]) == 0


class TestSummary:
    def test_serialized_summary_states_the_cpu_bound(self, capsys):
        # the CLI must state the ablation conclusion: the serialized
        # run's critical path is cpu-bound
        assert main(["summary", "serialized"]) == 0
        out = capsys.readouterr().out
        assert "run: serialized" in out
        assert "bound stage: cpu" in out
        assert "overlap estimate" in out
        assert "Run metrics" in out

    def test_pipelined_summary_states_the_gpu_bound(self, capsys):
        assert main(["summary", "pipelined"]) == 0
        assert "bound stage: gpu" in capsys.readouterr().out


class TestErrors:
    def test_unknown_source_exits_2(self, tmp_path, capsys):
        assert main(["summary", "no-such-thing"]) == 2
        err = capsys.readouterr().err
        assert "neither a dump file nor a scenario" in err
        assert "serialized" in err  # lists the valid scenarios

    def test_corrupt_dump_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        assert main(["export", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
