"""Unit tests for the Chrome-trace exporter and its validator."""

import json

import pytest

from repro.obs.dump import RankDump, RunDump
from repro.obs.export import (
    CHROME_SCHEMA,
    CHROME_VERSION,
    LOG_TID,
    METRICS_PID,
    ExportError,
    assign_slots,
    chrome_trace,
    export_chrome,
    validate_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.runtime.trace import RuntimeLogRecord, TraceEvent


def _rec(op, at, ids, batch=-1, kind="", attempt=0):
    return RuntimeLogRecord(
        op=op, at=at, kind=kind, ids=tuple(ids), attempt=attempt, batch=batch
    )


def _dump():
    rank = RankDump(
        rank=0,
        events=[
            TraceEvent("cpu", "a", 0.0, 1.0),
            TraceEvent("cpu", "b", 0.5, 1.5),  # overlaps a -> second slot
            TraceEvent("gpu", "k", 1.0, 2.0, batch=0),
        ],
        log=[
            _rec("submit", 0.0, ["w0"], kind="k"),
            _rec("flush", 0.5, ["w0"], batch=0),
            _rec("gpu_compute", 1.0, ["w0"], batch=0, attempt=1),
            _rec("accumulate", 2.0, ["w0"], batch=0),
        ],
        summary={"total_seconds": 2.0},
    )
    registry = MetricsRegistry()
    registry.counter("runtime.batches_flushed").inc(0.5)
    registry.gauge("runtime.inflight_batches").set(0.5, 1)
    dump = RunDump(meta={"scenario": "unit"}, ranks=[rank])
    dump.registry = registry
    return dump


class TestAssignSlots:
    def test_concurrent_events_take_distinct_slots(self):
        events = [
            TraceEvent("cpu", "a", 0.0, 1.0),
            TraceEvent("cpu", "b", 0.5, 1.5),
            TraceEvent("cpu", "c", 1.0, 2.0),
        ]
        slots = {e.label: slot for e, slot in assign_slots(events)}
        assert slots == {"a": 0, "b": 1, "c": 0}

    def test_assignment_is_order_independent(self):
        events = [
            TraceEvent("cpu", "a", 0.0, 1.0),
            TraceEvent("cpu", "b", 0.5, 1.5),
        ]
        assert assign_slots(events) == assign_slots(list(reversed(events)))


class TestChromeTrace:
    def test_every_interval_becomes_a_slice(self):
        dump = _dump()
        trace = chrome_trace(dump)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == len(dump.ranks[0].events)
        # microseconds, batch carried in args
        gpu = next(s for s in slices if s["cat"] == "gpu")
        assert gpu["ts"] == pytest.approx(1.0e6)
        assert gpu["dur"] == pytest.approx(1.0e6)
        assert gpu["args"] == {"batch": 0}

    def test_every_log_record_becomes_an_instant(self):
        dump = _dump()
        trace = chrome_trace(dump)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == len(dump.ranks[0].log)
        assert all(e["tid"] == LOG_TID for e in instants)
        compute = next(e for e in instants if e["name"] == "gpu_compute")
        assert compute["args"]["attempt"] == 1

    def test_flow_arrows_pair_up(self):
        trace = chrome_trace(_dump())
        starts = [e for e in trace["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in trace["traceEvents"] if e["ph"] == "f"]
        # submit->flush, flush->gpu_compute, gpu_compute->accumulate
        assert len(starts) == len(finishes) == 3
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}

    def test_counter_tracks_on_metrics_process(self):
        trace = chrome_trace(_dump())
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert {e["name"] for e in counters} == {
            "runtime.batches_flushed", "runtime.inflight_batches",
        }
        assert all(e["pid"] == METRICS_PID for e in counters)

    def test_schema_stamped_in_other_data(self):
        other = chrome_trace(_dump())["otherData"]
        assert other["schema"] == CHROME_SCHEMA
        assert other["version"] == CHROME_VERSION
        assert other["meta"] == {"scenario": "unit"}

    def test_export_chrome_is_valid_canonical_json(self):
        text = export_chrome(_dump())
        assert text.endswith("\n")
        validate_chrome_trace(json.loads(text))


class TestValidate:
    def _trace(self):
        return chrome_trace(_dump())

    def test_accepts_exported_trace(self):
        validate_chrome_trace(self._trace())

    def test_rejects_non_object(self):
        with pytest.raises(ExportError, match="JSON object"):
            validate_chrome_trace([])

    def test_rejects_missing_events_array(self):
        with pytest.raises(ExportError, match="traceEvents"):
            validate_chrome_trace({"otherData": {}})

    def test_rejects_unknown_phase(self):
        trace = self._trace()
        trace["traceEvents"].append({"ph": "Z", "name": "x"})
        with pytest.raises(ExportError, match="unknown phase"):
            validate_chrome_trace(trace)

    def test_rejects_missing_required_key(self):
        trace = self._trace()
        slice_event = next(
            e for e in trace["traceEvents"] if e["ph"] == "X"
        )
        del slice_event["dur"]
        with pytest.raises(ExportError, match="missing 'dur'"):
            validate_chrome_trace(trace)

    def test_rejects_negative_duration(self):
        trace = self._trace()
        next(e for e in trace["traceEvents"] if e["ph"] == "X")["dur"] = -1.0
        with pytest.raises(ExportError, match="negative dur"):
            validate_chrome_trace(trace)

    def test_rejects_unpaired_flow(self):
        trace = self._trace()
        trace["traceEvents"].append({
            "ph": "s", "name": "orphan", "id": 999, "ts": 0.0,
            "pid": 0, "tid": LOG_TID,
        })
        with pytest.raises(ExportError, match="unpaired flow"):
            validate_chrome_trace(trace)

    def test_rejects_backwards_flow(self):
        trace = self._trace()
        trace["traceEvents"] += [
            {"ph": "s", "name": "b", "id": 999, "ts": 5.0, "pid": 0,
             "tid": LOG_TID},
            {"ph": "f", "bp": "e", "name": "b", "id": 999, "ts": 1.0,
             "pid": 0, "tid": LOG_TID},
        ]
        with pytest.raises(ExportError, match="finishes before"):
            validate_chrome_trace(trace)
