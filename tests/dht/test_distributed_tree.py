"""Tests for the sharded distributed tree."""

import numpy as np
import pytest

from repro.dht.distributed_tree import DistributedTree
from repro.dht.process_map import HashProcessMap
from repro.mra.key import Key
from repro.mra.node import FunctionNode
from repro.mra.tree import FunctionTree


def build_local_tree(dim=2, depth=2):
    tree = FunctionTree(dim)
    root = Key.root(dim)
    tree[root] = FunctionNode(has_children=True)
    frontier = list(root.children())
    for level in range(1, depth):
        new_frontier = []
        for key in frontier:
            tree[key] = FunctionNode(has_children=True)
            new_frontier.extend(key.children())
        frontier = new_frontier
    for key in frontier:
        tree[key] = FunctionNode(coeffs=np.full((2, 2), float(sum(key.translation))))
    return tree


def test_scatter_places_by_owner():
    tree = build_local_tree()
    pmap = HashProcessMap(4)
    dist = DistributedTree.scatter(tree, pmap)
    assert dist.size() == tree.size()
    for rank, shard in enumerate(dist.shards):
        for key in shard:
            assert pmap.owner(key) == rank


def test_gather_roundtrip():
    tree = build_local_tree()
    dist = DistributedTree.scatter(tree, HashProcessMap(3))
    back = dist.gather()
    assert back.size() == tree.size()
    for key, node in tree.items():
        other = back[key]
        if node.coeffs is None:
            assert other.coeffs is None
        else:
            assert np.allclose(other.coeffs, node.coeffs)


def test_local_accumulate_records_no_message():
    dist = DistributedTree(2, HashProcessMap(4))
    key = Key(1, (0, 1))
    owner = dist.owner(key)
    dist.accumulate(key, np.ones((2, 2)), from_rank=owner)
    assert dist.messages.n_messages == 0


def test_remote_accumulate_records_message():
    dist = DistributedTree(2, HashProcessMap(4))
    key = Key(1, (0, 1))
    owner = dist.owner(key)
    sender = (owner + 1) % 4
    t = np.ones((2, 2))
    dist.accumulate(key, t, from_rank=sender)
    assert dist.messages.n_messages == 1
    assert dist.messages.bytes_total == t.nbytes
    assert dist.messages.by_pair[(sender, owner)] == 1


def test_accumulate_sums_contributions():
    dist = DistributedTree(1, HashProcessMap(2))
    key = Key(2, (1,))
    dist.accumulate(key, np.ones(3), from_rank=0)
    dist.accumulate(key, np.ones(3), from_rank=1)
    node = dist.get(key)
    assert np.all(node.coeffs == 2.0)


def test_insert_returns_owner():
    dist = DistributedTree(1, HashProcessMap(3))
    key = Key(1, (1,))
    rank = dist.insert(key, FunctionNode())
    assert rank == dist.owner(key)
    assert key in dist


def test_shard_sizes():
    tree = build_local_tree()
    dist = DistributedTree.scatter(tree, HashProcessMap(4))
    assert sum(dist.shard_sizes()) == tree.size()


def test_get_missing_returns_none():
    dist = DistributedTree(1, HashProcessMap(2))
    assert dist.get(Key(1, (0,))) is None
