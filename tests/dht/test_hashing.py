"""Tests for stable key hashing."""

from repro.dht.hashing import stable_key_hash
from repro.mra.key import Key


def test_hash_is_deterministic():
    k = Key(3, (1, 5, 2))
    assert stable_key_hash(k) == stable_key_hash(Key(3, (1, 5, 2)))


def test_hash_distinguishes_keys():
    seen = set()
    for key in Key(2, (0, 0)).children():
        seen.add(stable_key_hash(key))
    assert len(seen) == 4


def test_hash_distinguishes_levels():
    assert stable_key_hash(Key(0, (0,))) != stable_key_hash(Key(1, (0,)))


def test_hash_range_is_64_bit():
    h = stable_key_hash(Key(5, (17, 3)))
    assert 0 <= h < (1 << 64)


def test_hash_distribution_roughly_uniform():
    """Across many keys, modulo-N buckets should be reasonably even."""
    n_ranks = 16
    counts = [0] * n_ranks
    for level in range(1, 6):
        limit = 1 << level
        for t in range(limit):
            counts[stable_key_hash(Key(level, (t,))) % n_ranks] += 1
    total = sum(counts)
    assert max(counts) < 3 * total / n_ranks
