"""Tests for process maps (static load balancing policies)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.workloads import synthetic_tree_keys
from repro.dht.process_map import (
    CostPartitionMap,
    HashProcessMap,
    LevelStripeMap,
    SubtreePartitionMap,
)
from repro.errors import ClusterConfigError
from repro.mra.key import Key


def tree_keys(dim=2, n_leaves=128, seed=3):
    return synthetic_tree_keys(dim, n_leaves, seed)


def test_hash_map_covers_all_ranks():
    pmap = HashProcessMap(8)
    owners = {pmap.owner(k) for k in tree_keys()}
    assert owners == set(range(8))


def test_hash_map_is_even():
    """The Tables III/IV 'distribute work evenly' map."""
    pmap = HashProcessMap(4)
    counts = [0] * 4
    for k in tree_keys(n_leaves=512):
        counts[pmap.owner(k)] += 1
    assert max(counts) < 1.3 * min(counts)


def test_subtree_map_keeps_families_together():
    pmap = SubtreePartitionMap(8, anchor_level=1)
    for key in tree_keys():
        if key.level >= 2:
            assert pmap.owner(key) == pmap.owner(key.parent())


def test_subtree_map_is_uneven_on_skewed_trees():
    """The locality map of Tables V/VI produces imbalance by design."""
    pmap = SubtreePartitionMap(8, anchor_level=1)
    counts = [0] * 8
    for k in synthetic_tree_keys(2, 512, seed=7, skew=2.5):
        counts[pmap.owner(k)] += 1
    mean = sum(counts) / 8
    assert max(counts) > 1.5 * mean


def test_cost_partition_balances_better_than_subtree():
    keys = synthetic_tree_keys(2, 512, seed=7, skew=2.5)
    weights = {k: 1.0 for k in keys}
    cost_map = CostPartitionMap.from_weights(8, weights, granularity=4.0)
    subtree_map = SubtreePartitionMap(8, anchor_level=1)

    def imbalance(pmap):
        counts = [0] * 8
        for k in keys:
            counts[pmap.owner(k)] += 1
        return max(counts) / (sum(counts) / 8)

    assert imbalance(cost_map) < imbalance(subtree_map)


def test_cost_partition_respects_target_chunks():
    keys = synthetic_tree_keys(2, 256, seed=9)
    weights = {k: 1.0 for k in keys}
    coarse = CostPartitionMap.from_weights(4, weights, target_chunks=8)
    fine = CostPartitionMap.from_weights(4, weights, target_chunks=64)
    assert coarse.n_anchors < fine.n_anchors


def test_cost_partition_keeps_subtrees_together():
    keys = synthetic_tree_keys(2, 256, seed=11)
    weights = {k: 1.0 for k in keys}
    pmap = CostPartitionMap.from_weights(4, weights, granularity=1.0)
    for key in keys:
        anchor = pmap.anchor_of(key)
        # everything under one anchor shares the anchor's rank
        assert pmap.owner(key) == pmap.owner(anchor)


def test_level_stripe_map_spreads_levels():
    pmap = LevelStripeMap(4)
    owners = {pmap.owner(k) for k in tree_keys(n_leaves=256)}
    assert owners == set(range(4))


@pytest.mark.parametrize(
    "factory",
    [
        lambda n: HashProcessMap(n),
        lambda n: SubtreePartitionMap(n, anchor_level=1),
        lambda n: LevelStripeMap(n),
    ],
)
def test_owner_in_range(factory):
    pmap = factory(5)
    for key in tree_keys():
        assert 0 <= pmap.owner(key) < 5


@given(st.integers(1, 64), st.integers(0, 4), st.integers(0, 200))
@settings(max_examples=60, deadline=None)
def test_every_key_has_exactly_one_owner(n_ranks, level, t_seed):
    """A process map is a total function into [0, n_ranks)."""
    limit = 1 << level
    key = Key(level, (t_seed % limit, (t_seed // 7) % limit))
    for pmap in (
        HashProcessMap(n_ranks),
        SubtreePartitionMap(n_ranks, anchor_level=1),
        LevelStripeMap(n_ranks),
    ):
        owner = pmap.owner(key)
        assert 0 <= owner < n_ranks
        assert pmap.owner(key) == owner  # deterministic


def test_invalid_configs():
    with pytest.raises(ClusterConfigError):
        HashProcessMap(0)
    with pytest.raises(ClusterConfigError):
        SubtreePartitionMap(4, anchor_level=-1)
    with pytest.raises(ClusterConfigError):
        CostPartitionMap.from_weights(4, {}, granularity=1.0)
    with pytest.raises(ClusterConfigError):
        CostPartitionMap.from_weights(4, {Key.root(1): 1.0}, granularity=-1.0)


def test_subtree_map_coarse_keys_hash_across_ranks():
    """Pin the documented coarse-key behaviour: keys above the anchor
    level are their own anchors and hash directly across all ranks —
    the tree top is not a structural hot spot."""
    from repro.dht.hashing import stable_key_hash

    pmap = SubtreePartitionMap(8, anchor_level=3)
    coarse = [Key(2, (a, b)) for a in range(4) for b in range(4)]
    for key in coarse:
        assert pmap.anchor_of(key) == key
        assert pmap.owner(key) == stable_key_hash(key) % 8
        assert pmap.owner(key) == pmap.owner(pmap.anchor_of(key))
    assert len({pmap.owner(k) for k in coarse}) > 1


def test_subtree_map_boundary_level_is_its_own_anchor():
    """A key exactly at the anchor level anchors itself, and its whole
    subtree routes through it."""
    pmap = SubtreePartitionMap(8, anchor_level=2)
    key = Key(2, (1, 3))
    assert pmap.anchor_of(key) == key
    for child in key.children():
        assert pmap.anchor_of(child) == key
        assert pmap.owner(child) == pmap.owner(key)


@st.composite
def _tree_key(draw, dim=2, max_level=5):
    level = draw(st.integers(0, max_level))
    limit = 1 << level
    translation = tuple(
        draw(st.integers(0, limit - 1)) for _ in range(dim)
    )
    return Key(level, translation)


@given(
    n_ranks=st.integers(1, 16),
    anchor_level=st.integers(0, 3),
    keys=st.lists(_tree_key(), min_size=1, max_size=32),
)
@settings(max_examples=60, deadline=None)
def test_every_policy_is_total_and_anchor_consistent(
    n_ranks, anchor_level, keys
):
    """Every policy is a total, stable map into [0, n_ranks) whose
    ``owner`` agrees with its ``anchor_of`` routing — including keys at
    the ``level == anchor_level`` boundary."""
    weights = {k: 1.0 for k in keys}
    policies = [
        HashProcessMap(n_ranks),
        SubtreePartitionMap(n_ranks, anchor_level=anchor_level),
        LevelStripeMap(n_ranks),
        CostPartitionMap.from_weights(n_ranks, weights, granularity=2.0),
    ]
    for pmap in policies:
        for key in keys:
            owner = pmap.owner(key)
            assert 0 <= owner < n_ranks
            assert pmap.owner(key) == owner  # stable
            anchor = pmap.anchor_of(key)
            assert pmap.anchor_of(anchor) == anchor  # idempotent
            assert pmap.owner(anchor) == owner  # routing agreement
