"""Unit tests for the dynamic happens-before checker."""

from __future__ import annotations

import pytest

from repro.lint.trace_check import (
    TraceCheckError,
    check_runtime_log,
    find_violations,
    verify_tracer,
)
from repro.runtime.trace import (
    RuntimeLogRecord,
    Tracer,
    log_records_from_jsonl,
)


def rec(op, at, kind="k", ids=(), attempt=0):
    """Shorthand record constructor."""
    return RuntimeLogRecord(
        op=op, at=at, kind=kind, ids=tuple(ids), attempt=attempt
    )


def good_log():
    """A compliant run: two kinds, FIFO flushes, write-once transfers."""
    return [
        rec("submit", 0.0, "a", [1]),
        rec("submit", 0.1, "b", [10]),
        rec("submit", 0.2, "a", [2]),
        rec("flush", 0.5, "a", [1, 2]),
        rec("block_transfer", 0.6, "", ["h0", "h1"]),
        rec("submit", 0.7, "a", [3]),
        rec("flush", 0.8, "b", [10]),
        rec("flush", 1.0, "a", [3]),
        rec("block_transfer", 1.1, "", ["h2"]),
    ]


class TestCompliantLogs:
    def test_good_log_passes(self):
        assert find_violations(good_log()) == []
        check_runtime_log(good_log())  # must not raise

    def test_empty_log_passes(self):
        check_runtime_log([])

    def test_verify_tracer_on_fresh_tracer(self):
        verify_tracer(Tracer())


class TestViolations:
    def test_item_in_two_batches(self):
        log = good_log() + [rec("flush", 2.0, "a", [2])]
        violations = find_violations(log)
        assert any("2 flushed batches" in v for v in violations)
        with pytest.raises(TraceCheckError):
            check_runtime_log(log)

    def test_lost_item(self):
        log = [
            rec("submit", 0.0, "a", [1]),
            rec("submit", 0.1, "a", [2]),
            rec("flush", 0.5, "a", [1]),
        ]
        assert any("never flushed" in v for v in find_violations(log))

    def test_flush_of_unsubmitted_item(self):
        log = [rec("flush", 0.5, "a", [99])]
        assert any("never submitted" in v for v in find_violations(log))

    def test_fifo_reorder_detected(self):
        log = [
            rec("submit", 0.0, "a", [1]),
            rec("submit", 0.1, "a", [2]),
            rec("flush", 0.5, "a", [2, 1]),
        ]
        assert any("order" in v for v in find_violations(log))

    def test_flush_before_submit_time(self):
        log = [
            rec("submit", 1.0, "a", [1]),
            rec("flush", 0.5, "a", [1]),
        ]
        violations = find_violations(log)
        assert any("before its submission" in v for v in violations)
        # the log also went back in time
        assert any("back in time" in v for v in violations)

    def test_double_block_transfer(self):
        log = good_log() + [rec("block_transfer", 2.0, "", ["h0"])]
        assert any("write-once" in v for v in find_violations(log))

    def test_duplicate_submit(self):
        log = [
            rec("submit", 0.0, "a", [1]),
            rec("submit", 0.1, "a", [1]),
            rec("flush", 0.5, "a", [1, 1]),
        ]
        assert any("submitted twice" in v for v in find_violations(log))

    def test_gpu_compute_on_block_that_never_arrived(self):
        log = good_log() + [rec("gpu_compute", 2.0, "a", ["ghost"])]
        assert any("never arrived" in v for v in find_violations(log))

    def test_gpu_compute_before_transfer_completes(self):
        """The TOCTOU race the two-phase cache prevents: a kernel reads a
        block whose transfer finishes only later."""
        log = [
            rec("submit", 0.0, "a", [1]),
            rec("flush", 0.1, "a", [1]),
            rec("gpu_compute", 0.2, "a", ["h0"]),
            rec("block_transfer", 0.6, "", ["h0"]),
        ]
        assert any(
            "transfer completes later" in v for v in find_violations(log)
        )

    def test_gpu_compute_after_arrival_passes(self):
        log = good_log() + [
            rec("gpu_compute", 2.0, "a", ["h0", "h1", "h2"]),
        ]
        assert find_violations(log) == []

    def test_gpu_compute_at_arrival_instant_passes(self):
        """Completion and compute at the same instant is legal (the
        commit happens-before the kernel in scheduling order)."""
        log = [
            rec("submit", 0.0, "a", [1]),
            rec("flush", 0.1, "a", [1]),
            rec("block_transfer", 0.5, "", ["h0"]),
            rec("gpu_compute", 0.5, "a", ["h0"]),
        ]
        assert find_violations(log) == []

    def test_error_message_caps_listing(self):
        log = [rec("flush", 0.0, "a", [i]) for i in range(10)]
        with pytest.raises(TraceCheckError) as err:
            check_runtime_log(log)
        assert "..." in str(err.value)
        assert len(err.value.violations) == 10


class TestSerialization:
    def test_jsonl_round_trip(self):
        original = good_log()
        text = [r.to_json() for r in original] + ["", "  "]
        parsed = list(log_records_from_jsonl(text))
        assert len(parsed) == len(original)
        # ids are stringified on serialisation; structure must survive
        assert find_violations(parsed) == []
        assert [r.op for r in parsed] == [r.op for r in original]

    def test_unknown_op_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            rec("teleport", 0.0)


# -- effectively-exactly-once accumulation (fault injection) ------------------------


def fault_log():
    """A compliant faulted run: one retry, results accumulated once."""
    return [
        rec("submit", 0.0, "a", [1]),
        rec("submit", 0.1, "a", [2]),
        rec("flush", 0.2, "a", [1, 2]),
        rec("gpu_compute", 0.3, "a", ["h0"]),
        rec("gpu_fault", 0.4, "a"),
        rec("gpu_compute", 0.5, "a", ["h0"], attempt=1),
        rec("accumulate", 0.6, "a", [1, 2], attempt=1),
    ]


class TestExactlyOnceAccumulation:
    def test_faulted_retry_log_passes(self):
        log = fault_log()
        # the gpu_compute arrival check needs the block on device
        log.insert(3, rec("block_transfer", 0.25, "", ["h0"]))
        assert find_violations(log) == []

    def test_logs_without_accumulates_skip_the_check(self):
        assert find_violations(good_log()) == []

    def test_double_accumulate_detected(self):
        log = [
            rec("submit", 0.0, "a", [1]),
            rec("flush", 0.2, "a", [1]),
            rec("accumulate", 0.3, "a", [1]),
            rec("accumulate", 0.4, "a", [1], attempt=1),
        ]
        violations = find_violations(log)
        assert any("accumulated 2 times" in v for v in violations)

    def test_dropped_item_detected(self):
        log = [
            rec("submit", 0.0, "a", [1]),
            rec("submit", 0.1, "a", [2]),
            rec("flush", 0.2, "a", [1, 2]),
            rec("accumulate", 0.3, "a", [1]),  # item 2 vanished
        ]
        violations = find_violations(log)
        assert any("never accumulated" in v for v in violations)

    def test_accumulate_of_unflushed_item_detected(self):
        log = [
            rec("submit", 0.0, "a", [1]),
            rec("flush", 0.2, "a", [1]),
            rec("accumulate", 0.3, "a", [1, 99]),
        ]
        violations = find_violations(log)
        assert any("never flushed" in v for v in violations)

    def test_accumulate_before_flush_detected(self):
        log = [
            rec("submit", 0.0, "a", [1]),
            rec("accumulate", 0.1, "a", [1]),
            rec("flush", 0.2, "a", [1]),
        ]
        violations = find_violations(log)
        assert any("before its flush" in v for v in violations)

    def test_unjustified_retry_detected(self):
        log = [
            rec("submit", 0.0, "a", [1]),
            rec("flush", 0.2, "a", [1]),
            rec("gpu_compute", 0.5, "a", [], attempt=1),  # no gpu_fault
            rec("accumulate", 0.6, "a", [1], attempt=1),
        ]
        violations = find_violations(log)
        assert any("justified by a fault" in v for v in violations)

    def test_attempt_round_trips_through_jsonl(self):
        log = fault_log()
        lines = [r.to_json() for r in log]
        parsed = list(log_records_from_jsonl(lines))
        assert [r.attempt for r in parsed] == [r.attempt for r in log]

    def test_legacy_jsonl_defaults_attempt_zero(self):
        line = '{"op": "submit", "at": 0.0, "kind": "a", "ids": ["1"]}'
        (parsed,) = log_records_from_jsonl([line])
        assert parsed.attempt == 0

    def test_negative_attempt_rejected(self):
        with pytest.raises(Exception):
            rec("gpu_compute", 0.0, "a", attempt=-1)


def recovery_log():
    """A compliant crash-and-recover run: one checkpoint survives the
    crash, the un-checkpointed tail is rolled back and replayed."""
    return [
        # epoch 0 — cut short by a crash
        rec("submit", 0.0, "a", [1]),
        rec("submit", 0.1, "a", [2]),
        rec("submit", 0.2, "a", [3]),
        rec("flush", 0.3, "a", [1, 2]),
        rec("accumulate", 0.4, "a", [1, 2]),
        rec("checkpoint", 0.5, "0<--1", [1, 2]),
        rec("flush", 0.6, "a", [3]),
        rec("accumulate", 0.7, "a", [3]),
        # crash: 3 was accumulated after the snapshot — roll it back
        rec("rollback", 0.9, "0", [3]),
        rec("restore", 1.0, "0"),
        # epoch 1 — replay the lost window
        rec("submit", 1.1, "a", [3]),
        rec("flush", 1.2, "a", [3]),
        rec("accumulate", 1.3, "a", [3]),
    ]


class TestRecoveryLedger:
    def test_compliant_recovery_log_passes(self):
        assert find_violations(recovery_log()) == []

    def test_crashed_epoch_forgives_cut_off_work(self):
        # item 3's first life (flushed, accumulated, rolled back) and
        # item 4 (submitted, never flushed) are forgiven in the crashed
        # epoch — the global ledger still balances
        log = recovery_log()
        log.insert(3, rec("submit", 0.25, "a", [4]))
        log += [
            rec("submit", 1.4, "a", [4]),
            rec("flush", 1.5, "a", [4]),
            rec("accumulate", 1.6, "a", [4]),
        ]
        assert find_violations(log) == []

    def test_final_epoch_not_forgiven(self):
        # the same cut-off shape in the *final* epoch is real work loss
        log = recovery_log() + [rec("submit", 1.4, "a", [5])]
        violations = find_violations(log)
        assert any("never flushed" in v for v in violations)

    def test_malformed_lineage_edge(self):
        log = recovery_log()
        log[5] = rec("checkpoint", 0.5, "zero", [1, 2])
        violations = find_violations(log)
        assert any("malformed lineage" in v for v in violations)

    def test_sequence_numbers_must_increase(self):
        log = recovery_log() + [
            rec("checkpoint", 1.4, "0<-0", [3]),
        ]
        violations = find_violations(log)
        assert any("must increase" in v for v in violations)

    def test_checkpoint_must_parent_the_frontier(self):
        log = recovery_log() + [
            rec("checkpoint", 1.4, "2<--1", [3]),
        ]
        violations = find_violations(log)
        assert any("durable frontier is 0" in v for v in violations)

    def test_checkpoint_covering_unaccumulated_item(self):
        log = recovery_log() + [
            rec("checkpoint", 1.4, "1<-0", [3, 99]),
        ]
        violations = find_violations(log)
        assert any("never accumulated" in v for v in violations)

    def test_checkpoint_recovering_durable_item(self):
        log = recovery_log() + [
            rec("checkpoint", 1.4, "1<-0", [3, 1]),
        ]
        violations = find_violations(log)
        assert any("re-covers item" in v for v in violations)

    def test_rollback_of_unaccumulated_item(self):
        log = recovery_log()
        log[8] = rec("rollback", 0.9, "0", [3, 42])
        violations = find_violations(log)
        assert any("cancels item" in v for v in violations)

    def test_restore_requires_preceding_rollback(self):
        log = recovery_log()
        del log[8]  # drop the rollback
        violations = find_violations(log)
        assert any("without a preceding rollback" in v for v in violations)

    def test_restore_must_match_rollback_target(self):
        log = recovery_log()
        log[8] = rec("rollback", 0.9, "-1", [1, 2, 3])
        violations = find_violations(log)
        assert any("does not match the preceding rollback" in v
                   for v in violations)

    def test_restore_off_the_lineage(self):
        log = recovery_log()
        log[8] = rec("rollback", 0.9, "7", [3])
        log[9] = rec("restore", 1.0, "7")
        violations = find_violations(log)
        assert any("not on the durable lineage" in v for v in violations)

    def test_resubmit_of_durable_item(self):
        log = recovery_log() + [rec("submit", 1.4, "a", [1])]
        violations = find_violations(log)
        assert any("resubmitted after being covered" in v
                   for v in violations)

    def test_reaccumulate_of_durable_item(self):
        log = recovery_log() + [
            rec("flush", 1.5, "a", [1]),
            rec("accumulate", 1.6, "a", [1]),
        ]
        violations = find_violations(log)
        assert any("re-accumulated after being covered" in v
                   for v in violations)

    def test_rolled_back_item_never_replayed_is_work_lost(self):
        log = recovery_log()[:11]  # cut the replay after its submit
        violations = find_violations(log)
        assert any("work lost in recovery" in v for v in violations)

    def test_double_count_across_epochs(self):
        # item 3 replayed although its first accumulate was never
        # rolled back: effectively counted twice
        log = recovery_log()
        log[8] = rec("rollback", 0.9, "0", [])
        violations = find_violations(log)
        assert any("effectively accumulated 2 times" in v
                   for v in violations)

    def test_recovery_error_raised(self):
        log = recovery_log()
        log[8] = rec("rollback", 0.9, "0", [])
        with pytest.raises(TraceCheckError):
            check_runtime_log(log)


class TestRecoveryLedgerEdgeCases:
    """Invariant 7 at its boundaries: runs with no restore at all, an
    empty lineage, and a restore walk past corrupted snapshots."""

    def test_zero_restore_run_with_checkpoints_passes(self):
        # armed recovery, no crash: checkpoints commit, nothing restores
        log = [
            rec("submit", 0.0, "a", [1]),
            rec("submit", 0.1, "a", [2]),
            rec("flush", 0.3, "a", [1, 2]),
            rec("accumulate", 0.4, "a", [1, 2]),
            rec("checkpoint", 0.5, "0<--1", [1, 2]),
            rec("submit", 0.6, "a", [3]),
            rec("flush", 0.7, "a", [3]),
            rec("accumulate", 0.8, "a", [3]),
            rec("checkpoint", 0.9, "1<-0", [3]),
        ]
        assert find_violations(log) == []

    def test_zero_restore_run_without_checkpoints_passes(self):
        # recovery never armed: the ledger must stay entirely silent
        log = [
            rec("submit", 0.0, "a", [1]),
            rec("flush", 0.3, "a", [1]),
            rec("accumulate", 0.4, "a", [1]),
        ]
        assert find_violations(log) == []

    def test_from_scratch_restart_with_empty_lineage(self):
        # a crash before any checkpoint restores to seq -1: the empty
        # lineage is a legal restore target and covers nothing
        log = [
            rec("submit", 0.0, "a", [1]),
            rec("flush", 0.3, "a", [1]),
            rec("accumulate", 0.4, "a", [1]),
            rec("rollback", 0.5, "-1", [1]),
            rec("restore", 0.6, "-1"),
            rec("submit", 0.7, "a", [1]),
            rec("flush", 0.8, "a", [1]),
            rec("accumulate", 0.9, "a", [1]),
        ]
        assert find_violations(log) == []

    def test_restore_to_missing_seq_on_empty_lineage_flagged(self):
        # restoring to a checkpoint that never committed cannot be on
        # the (empty) durable lineage
        log = [
            rec("submit", 0.0, "a", [1]),
            rec("flush", 0.3, "a", [1]),
            rec("accumulate", 0.4, "a", [1]),
            rec("rollback", 0.5, "3", [1]),
            rec("restore", 0.6, "3"),
        ]
        violations = find_violations(log)
        assert any("not on the durable lineage" in v for v in violations)

    def _corrupted_walk_log(self):
        """Two checkpoints; the newest (seq 1) is corrupted on disk, so
        the restore walk rejects it (``s1`` in ids) and lands on seq 0."""
        return [
            rec("submit", 0.0, "a", [1]),
            rec("submit", 0.1, "a", [2]),
            rec("flush", 0.2, "a", [1]),
            rec("accumulate", 0.3, "a", [1]),
            rec("checkpoint", 0.4, "0<--1", [1]),
            rec("flush", 0.5, "a", [2]),
            rec("accumulate", 0.6, "a", [2]),
            rec("checkpoint", 0.7, "1<-0", [2]),
            # crash: seq 1 is unreadable, the walk falls back to seq 0,
            # so item 2 (covered only by seq 1) must be rolled back
            rec("rollback", 0.8, "0", [2]),
            RuntimeLogRecord(
                op="restore", at=0.9, kind="0", ids=("s1", "s0")
            ),
            rec("submit", 1.0, "a", [2]),
            rec("flush", 1.1, "a", [2]),
            rec("accumulate", 1.2, "a", [2]),
        ]

    def test_corrupted_last_snapshot_walk_passes(self):
        assert find_violations(self._corrupted_walk_log()) == []

    def test_corrupted_walk_uncovers_the_newest_snapshot(self):
        # after falling back past the corrupted seq 1, item 2 is no
        # longer durable — re-covering it at seq 2 must be legal
        log = self._corrupted_walk_log() + [
            rec("checkpoint", 1.3, "2<-0", [2]),
        ]
        assert find_violations(log) == []

    def test_corrupted_walk_without_rollback_is_double_count(self):
        # dropping the rollback makes the replay of item 2 a real
        # double accumulation — the walk must not forgive that
        log = self._corrupted_walk_log()
        log[8] = rec("rollback", 0.8, "0", [])
        violations = find_violations(log)
        assert any("effectively accumulated 2 times" in v
                   for v in violations)


def mrec(op, at, kind="k", ids=(), batch=-1):
    """Record constructor with a batch/request id (migration tests)."""
    return RuntimeLogRecord(
        op=op, at=at, kind=kind, ids=tuple(ids), attempt=0, batch=batch
    )


class TestMigrationPerRank:
    """Invariant 8, per-rank half: grants leave, migrations register."""

    def test_grant_then_migrate_back_is_clean(self):
        # t1 is granted away, later migrates back and runs here
        log = [
            mrec("submit", 0.0, "a", ["t0"]),
            mrec("submit", 0.0, "a", ["t1"]),
            mrec("steal_grant", 0.5, "a", ["t1"], batch=0),
            mrec("flush", 1.0, "a", ["t0"], batch=0),
            mrec("accumulate", 1.5, "a", ["t0"], batch=0),
            mrec("migrate", 2.0, "a", ["t1"], batch=3),
            mrec("flush", 2.5, "a", ["t1"], batch=1),
            mrec("accumulate", 3.0, "a", ["t1"], batch=1),
        ]
        assert find_violations(log) == []

    def test_granted_item_is_not_expected_to_flush(self):
        log = [
            mrec("submit", 0.0, "a", ["t0"]),
            mrec("submit", 0.0, "a", ["t1"]),
            mrec("steal_grant", 0.5, "a", ["t1"], batch=0),
            mrec("flush", 1.0, "a", ["t0"], batch=0),
            mrec("accumulate", 1.5, "a", ["t0"], batch=0),
        ]
        assert find_violations(log) == []

    def test_flush_after_grant_is_flagged(self):
        log = [
            mrec("submit", 0.0, "a", ["t0"]),
            mrec("steal_grant", 0.5, "a", ["t0"], batch=0),
            mrec("flush", 1.0, "a", ["t0"], batch=0),
        ]
        assert any("never submitted" in v for v in find_violations(log))

    def test_migrate_of_pending_item_is_duplicate(self):
        log = [
            mrec("submit", 0.0, "a", ["t0"]),
            mrec("migrate", 0.5, "a", ["t0"], batch=0),
        ]
        assert any(
            "duplicate migration" in v for v in find_violations(log)
        )

    def test_migrate_after_local_execution_is_flagged(self):
        log = [
            mrec("submit", 0.0, "a", ["t0"]),
            mrec("flush", 0.5, "a", ["t0"], batch=0),
            mrec("accumulate", 0.7, "a", ["t0"], batch=0),
            mrec("migrate", 1.0, "a", ["t0"], batch=1),
        ]
        assert any(
            "already executed" in v for v in find_violations(log)
        )

    def test_grant_of_unknown_item_is_flagged(self):
        log = [
            mrec("submit", 0.0, "a", ["t0"]),
            mrec("steal_grant", 0.5, "a", ["t9"], batch=0),
        ]
        assert any("not pending" in v for v in find_violations(log))

    def test_grant_under_wrong_kind_is_flagged(self):
        log = [
            mrec("submit", 0.0, "a", ["t0"]),
            mrec("submit", 0.0, "a", ["t1"]),
            mrec("steal_grant", 0.5, "b", ["t1"], batch=0),
        ]
        assert any("another kind" in v for v in find_violations(log))


class TestMigrationAcrossRanks:
    """Invariant 8, cross-rank half: the exactly-once ledger."""

    def _clean_logs(self):
        victim = [
            mrec("submit", 0.0, "a", ["t0", "t1", "t2"]),
            mrec("steal_grant", 0.5, "a", ["t2"], batch=0),
            mrec("flush", 1.0, "a", ["t0", "t1"], batch=0),
            mrec("accumulate", 1.5, "a", ["t0", "t1"], batch=0),
        ]
        thief = [
            mrec("migrate", 0.6, "a", ["t2"], batch=0),
            mrec("flush", 0.7, "a", ["t2"], batch=0),
            mrec("accumulate", 0.9, "a", ["t2"], batch=0),
        ]
        return {0: victim, 1: thief}

    def test_clean_migration_passes(self):
        from repro.lint.trace_check import find_migration_violations

        assert find_migration_violations(self._clean_logs()) == []

    def test_no_steal_records_is_vacuously_clean(self):
        from repro.lint.trace_check import find_migration_violations

        # per-rank w<n> names are not globally comparable, so logs
        # without steal ops are out of scope by design
        logs = {
            0: [mrec("submit", 0.0, "a", ["w0"]),
                mrec("flush", 0.5, "a", ["w0"], batch=0),
                mrec("accumulate", 0.6, "a", ["w0"], batch=0)],
            1: [mrec("submit", 0.0, "a", ["w0"]),
                mrec("flush", 0.5, "a", ["w0"], batch=0),
                mrec("accumulate", 0.6, "a", ["w0"], batch=0)],
        }
        assert find_migration_violations(logs) == []

    def test_grant_without_migrate_is_lost_work(self):
        from repro.lint.trace_check import find_migration_violations

        logs = self._clean_logs()
        logs[1] = [r for r in logs[1] if r.op != "migrate"]
        assert any(
            "never migrated" in v
            for v in find_migration_violations(logs)
        )

    def test_migrate_without_grant_is_flagged(self):
        from repro.lint.trace_check import find_migration_violations

        logs = self._clean_logs()
        logs[0] = [r for r in logs[0] if r.op != "steal_grant"]
        assert any(
            "without a matching grant" in v
            for v in find_migration_violations(logs)
        )

    def test_double_migrate_is_flagged(self):
        from repro.lint.trace_check import find_migration_violations

        logs = self._clean_logs()
        logs[1] = logs[1] + [mrec("migrate", 0.8, "a", ["t2"], batch=0)]
        assert any(
            "migrated 2 times" in v
            for v in find_migration_violations(logs)
        )

    def test_migrate_onto_victim_is_flagged(self):
        from repro.lint.trace_check import find_migration_violations

        logs = self._clean_logs()
        logs[0] = logs[0] + [mrec("migrate", 0.6, "a", ["t2"], batch=0)]
        logs[1] = [r for r in logs[1] if r.op != "migrate"]
        assert any(
            "victim rank" in v for v in find_migration_violations(logs)
        )

    def test_migrate_before_grant_instant_is_flagged(self):
        from repro.lint.trace_check import find_migration_violations

        logs = self._clean_logs()
        logs[1][0] = mrec("migrate", 0.1, "a", ["t2"], batch=0)
        assert any(
            "precedes its grant" in v
            for v in find_migration_violations(logs)
        )

    def test_global_double_execution_is_flagged(self):
        from repro.lint.trace_check import find_migration_violations

        logs = self._clean_logs()
        # the victim also runs the task it granted away
        logs[0] = logs[0] + [
            mrec("flush", 2.0, "a", ["t2"], batch=1),
            mrec("accumulate", 2.5, "a", ["t2"], batch=1),
        ]
        violations = find_migration_violations(logs)
        assert any("flushed on ranks" in v for v in violations)
        assert any("accumulated 2 times" in v for v in violations)

    def test_mismatched_ids_are_flagged(self):
        from repro.lint.trace_check import find_migration_violations

        logs = self._clean_logs()
        logs[1][0] = mrec("migrate", 0.6, "a", ["t0"], batch=0)
        assert any(
            "differ from granted" in v
            for v in find_migration_violations(logs)
        )


def srec(op, at, kind="standard", ids=(), batch=0):
    """Serving-ledger record shorthand (batch carries the tenant)."""
    return RuntimeLogRecord(
        op=op, at=at, kind=kind, ids=tuple(ids), batch=batch
    )


def serve_log():
    """A compliant serving run: j0 admitted and completed, j1 shed."""
    return [
        srec("arrive", 0.0, ids=["j0"]),
        srec("admit", 0.0, ids=["j0"]),
        srec("submit", 0.0, "k", ["j0.s0.i0"]),
        srec("submit", 0.0, "k", ["j0.s0.i1"]),
        srec("arrive", 0.1, ids=["j1"], batch=1),
        srec("shed", 0.1, "token-bucket", ["j1"], batch=1),
        srec("flush", 0.2, "k", ["j0.s0.i0", "j0.s0.i1"]),
        srec("scale", 0.25, "up", ["n1"], batch=2),
        srec("accumulate", 0.3, "k", ["j0.s0.i0", "j0.s0.i1"]),
        srec("deadline_miss", 0.3, ids=["j0"]),
    ]


class TestServeLedger:
    """Invariant 9: every arrival admitted xor shed, exactly once."""

    def test_compliant_serving_log_passes(self):
        assert find_violations(serve_log()) == []

    def test_double_arrival_detected(self):
        log = serve_log() + [srec("arrive", 0.4, ids=["j0"])]
        assert any("arrived twice" in v for v in find_violations(log))

    def test_verdict_without_arrival_detected(self):
        log = serve_log() + [srec("admit", 0.4, ids=["j9"])]
        assert any(
            "verdict without an arrival" in v for v in find_violations(log)
        )

    def test_verdict_before_arrival_detected(self):
        # the verdict record carries an instant earlier than the
        # arrival it follows in the stream
        log = [
            srec("arrive", 0.1, ids=["j0"]),
            srec("admit", 0.05, ids=["j0"]),
            srec("submit", 0.2, "k", ["j0.s0.i0"]),
            srec("flush", 0.3, "k", ["j0.s0.i0"]),
            srec("accumulate", 0.4, "k", ["j0.s0.i0"]),
        ]
        violations = find_violations(log)
        assert any("precedes its arrival" in v for v in violations)
        # the emission-order regression is independently flagged
        assert any("back in time" in v for v in violations)

    def test_arrival_without_verdict_detected(self):
        log = serve_log() + [srec("arrive", 0.4, ids=["j2"], batch=2)]
        assert any(
            "neither admitted nor shed" in v for v in find_violations(log)
        )

    def test_double_admit_and_double_shed_detected(self):
        log = serve_log() + [srec("admit", 0.4, ids=["j0"])]
        assert any("admitted 2 times" in v for v in find_violations(log))
        log = serve_log() + [
            srec("shed", 0.4, "queue-depth", ["j1"], batch=1)
        ]
        assert any("shed 2 times" in v for v in find_violations(log))

    def test_admit_and_shed_are_exclusive(self):
        log = serve_log() + [
            srec("shed", 0.4, "queue-depth", ["j0"])
        ]
        assert any(
            "both admitted and shed" in v for v in find_violations(log)
        )

    def test_shed_job_charging_compute_detected(self):
        log = serve_log() + [
            srec("submit", 0.4, "k", ["j1.s0.i0"]),
        ]
        assert any(
            "shed job 'j1' charged compute" in v
            for v in find_violations(log)
        )

    def test_admitted_job_without_work_detected(self):
        log = [
            srec("arrive", 0.0, ids=["j0"]),
            srec("admit", 0.0, ids=["j0"]),
        ]
        assert any(
            "never submitted any work" in v for v in find_violations(log)
        )

    def test_lost_serve_item_detected(self):
        # j0's second item never accumulates: completion is not
        # exactly-once
        log = [r for r in serve_log()
               if not (r.op == "accumulate")] + [
            srec("accumulate", 0.3, "k", ["j0.s0.i0"]),
        ]
        assert any(
            "did not complete exactly once" in v
            for v in find_violations(log)
        )

    def test_duplicate_deadline_miss_detected(self):
        log = serve_log() + [srec("deadline_miss", 0.4, ids=["j0"])]
        assert any(
            "2 deadline misses" in v for v in find_violations(log)
        )

    def test_deadline_miss_without_admission_detected(self):
        log = serve_log() + [srec("deadline_miss", 0.4, ids=["j1"])]
        assert any(
            "missed a deadline but was never admitted" in v
            for v in find_violations(log)
        )

    def test_non_serving_logs_skip_the_ledger(self):
        # no serve ops -> invariant 9 never engages, good_log passes
        assert find_violations(good_log()) == []
