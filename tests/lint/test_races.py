"""Unit tests for the dynamic race detector.

The adversarial fixtures are hand-built logs with one sanctioned edge
deliberately removed; the zero-false-positive tests replay real
canonical scenarios through the detector.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.lint.races import (
    DEFAULT_COMMUTATIVE,
    RaceConfig,
    analyze_log,
    detect_races,
)
from repro.runtime.trace import RuntimeLogRecord


def rec(op, at, kind="k", ids=(), attempt=0, batch=-1):
    """Shorthand record constructor."""
    return RuntimeLogRecord(
        op=op, at=at, kind=kind, ids=tuple(ids), attempt=attempt, batch=batch
    )


def ordered_log():
    """A fully ordered single-batch run: no races by construction."""
    return [
        rec("submit", 0.0, "a", [1]),
        rec("submit", 0.1, "a", [2]),
        rec("flush", 0.5, "a", [1, 2], batch=0),
        rec("begin_transfer", 0.5, "a", ["h0", "h1"], batch=0),
        rec("block_transfer", 0.6, "", ["h0", "h1"], batch=0),
        rec("gpu_compute", 0.7, "a", ["h0", "h1"], batch=0),
        rec("accumulate", 0.9, "a", [1, 2], batch=0),
    ]


class TestOrderedLogs:
    def test_ordered_log_is_clean(self):
        report = analyze_log(ordered_log())
        assert report.clean
        assert report.races == []
        assert report.n_records == len(ordered_log())
        assert report.n_accesses > 0

    def test_empty_log_is_clean(self):
        assert analyze_log([]).clean

    def test_cross_batch_commit_ordered_through_reservation(self):
        # batch 1 reserves h0 after batch 0 committed it: the
        # commit -> compute edge exists, no race
        log = ordered_log() + [
            rec("flush", 1.0, "a", [3], batch=1),
            rec("begin_transfer", 1.0, "a", ["h0"], batch=1),
            rec("gpu_compute", 1.1, "a", ["h0"], batch=1),
            rec("accumulate", 1.2, "a", [3], batch=1),
        ]
        assert analyze_log(log).clean


class TestTruePositives:
    def test_unordered_double_accumulate(self):
        # the ISSUE acceptance fixture: two batch threads accumulate the
        # same item with no rollback/restore ordering them
        log = ordered_log() + [
            rec("accumulate", 0.95, "a", [1], batch=1),
        ]
        report = analyze_log(log)
        assert not report.clean
        (race,) = report.races
        assert race.resource == "accum:1"
        assert race.first.mode == "write" and race.second.mode == "write"
        assert "rollback/restore" in race.missing_edge

    def test_unreserved_block_read(self):
        # batch 1 reads h0 without a begin_transfer reservation: the
        # commit -> compute edge is missing
        log = ordered_log() + [
            rec("gpu_compute", 1.0, "a", ["h0"], batch=1),
        ]
        report = analyze_log(log)
        assert not report.clean
        (race,) = report.races
        assert race.resource == "cache:h0"
        assert "begin_transfer reservation" in race.missing_edge

    def test_double_commit_of_one_block(self):
        # two batches ship the same block with no restore between: a
        # write-once violation surfaces as a write-write race
        log = ordered_log() + [
            rec("block_transfer", 1.0, "", ["h0"], batch=1),
        ]
        report = analyze_log(log)
        assert any(r.resource == "cache:h0" for r in report.races)

    def test_restore_barrier_orders_epochs(self):
        # same double-commit shape, but separated by a crash-restart:
        # the restore barrier orders epoch 2 after everything prior
        log = ordered_log() + [
            rec("checkpoint", 0.95, "1<--1", [1, 2]),
            rec("rollback", 1.0, "1", []),
            rec("restore", 1.1, "1"),
            rec("block_transfer", 1.2, "", ["h0"], batch=1),
        ]
        assert analyze_log(log).clean

    def test_report_render_and_dict_shape(self):
        log = ordered_log() + [rec("accumulate", 0.95, "a", [1], batch=1)]
        report = analyze_log(log)
        text = report.render()
        assert "race on accum:1" in text
        assert "missing edge:" in text
        payload = report.to_dict()
        assert payload["summary"]["n_races"] == 1
        assert payload["races"][0]["resource"] == "accum:1"


class TestSuppression:
    def test_commutative_pattern_suppresses(self):
        log = ordered_log() + [rec("accumulate", 0.95, "a", [1], batch=1)]
        config = RaceConfig(commutative=("accum:1",))
        report = analyze_log(log, config=config)
        assert report.clean
        assert len(report.suppressed) == 1

    def test_fnmatch_wildcards(self):
        config = RaceConfig(commutative=("metric:gauge:runtime.*",))
        assert config.is_commutative("metric:gauge:runtime.inflight_batches")
        assert not config.is_commutative("metric:gauge:node.queue_depth")

    def test_default_allowlist_is_narrow(self):
        config = RaceConfig()
        assert config.commutative == DEFAULT_COMMUTATIVE
        assert not config.is_commutative("accum:1")


def fake_dump(rank_logs, gauges=None):
    """A duck-typed RunDump: per-rank logs plus a metrics registry."""
    metrics = {"gauges": gauges or {}}
    return SimpleNamespace(
        ranks=[
            SimpleNamespace(rank=rank, log=log)
            for rank, log in enumerate(rank_logs)
        ],
        registry=SimpleNamespace(to_dict=lambda: metrics),
    )


class TestGaugeOwnership:
    def test_unowned_gauge_in_multirank_dump_races(self):
        dump = fake_dump(
            [[], []],
            gauges={"node.queue_depth": {"samples": [(0.1, 1), (0.9, 0)]}},
        )
        report = detect_races(dump)
        (race,) = report.races
        assert race.resource == "metric:gauge:node.queue_depth"
        assert "last-write-wins" in race.missing_edge

    def test_driver_owned_gauge_is_fine(self):
        dump = fake_dump(
            [[], []],
            gauges={"cluster.makespan_seconds": {"samples": [(1.0, 2.0)]}},
        )
        assert detect_races(dump).clean

    def test_allowlisted_gauge_is_suppressed(self):
        dump = fake_dump(
            [[], []],
            gauges={
                "runtime.inflight_batches": {"samples": [(0.1, 1), (0.2, 0)]}
            },
        )
        report = detect_races(dump)
        assert report.clean
        assert len(report.suppressed) == 1

    def test_single_rank_gauges_never_race(self):
        dump = fake_dump(
            [[]],
            gauges={"node.queue_depth": {"samples": [(0.1, 1)]}},
        )
        assert detect_races(dump).clean


@pytest.mark.parametrize("scenario", ["serialized", "faulty", "checkpoint"])
def test_canonical_scenarios_are_race_free(scenario):
    """Zero false positives on real captured runs (the ISSUE gate)."""
    from repro.obs.scenarios import run_scenario

    report = detect_races(run_scenario(scenario).dump)
    assert report.clean, report.render()
    assert report.n_accesses > 0


class TestStealingEdges:
    """Work-stealing ops: sanctioned edges order the protocol; the
    exactly-once property shows up as accum write-write conflicts."""

    def _victim_log(self):
        return [
            rec("submit", 0.0, "a", [1]),
            rec("submit", 0.0, "a", [2]),
            rec("steal_grant", 0.5, "a", [2], batch=0),
            rec("flush", 1.0, "a", [1], batch=0),
            rec("accumulate", 1.5, "a", [1], batch=0),
        ]

    def _thief_log(self):
        return [
            rec("steal_request", 0.4, "v0", [], batch=0),
            rec("migrate", 0.6, "a", [2], batch=0),
            rec("flush", 0.7, "a", [2], batch=0),
            rec("accumulate", 0.9, "a", [2], batch=0),
        ]

    def test_victim_side_protocol_is_clean(self):
        assert analyze_log(self._victim_log()).clean

    def test_thief_side_protocol_is_clean(self):
        assert analyze_log(self._thief_log()).clean

    def test_deny_and_request_are_access_free(self):
        log = [
            rec("steal_request", 0.1, "v1", [], batch=0),
            rec("steal_deny", 0.2, "t2", [], batch=0),
        ]
        report = analyze_log(log)
        assert report.clean
        assert report.n_accesses == 0

    def test_executing_a_granted_item_races(self):
        # the victim grants item 2 away, then runs it anyway: the
        # grant's accum write and the accumulate are unordered
        log = self._victim_log() + [
            rec("flush", 2.0, "a", [2], batch=1),
            rec("accumulate", 2.5, "a", [2], batch=1),
        ]
        report = analyze_log(log)
        assert not report.clean
        assert any(r.resource == "accum:2" for r in report.races)

    def test_migrating_an_executed_item_races(self):
        # item 2 already ran here; a later migrate-in is a duplicate
        log = [
            rec("submit", 0.0, "a", [2]),
            rec("flush", 0.5, "a", [2], batch=0),
            rec("accumulate", 0.7, "a", [2], batch=0),
            rec("migrate", 1.0, "a", [2], batch=1),
        ]
        report = analyze_log(log)
        assert not report.clean
        assert any(r.resource == "accum:2" for r in report.races)

    def test_migrate_back_after_grant_is_ordered(self):
        # A grants item 2 away; it migrates back later (re-steal chain)
        # and runs here — the grant -> migrate edge orders the writes
        log = self._victim_log() + [
            rec("migrate", 2.0, "a", [2], batch=5),
            rec("flush", 2.5, "a", [2], batch=1),
            rec("accumulate", 3.0, "a", [2], batch=1),
        ]
        assert analyze_log(log).clean


class TestChaosEdges:
    """Crash-recovery ops (schema v5): a rehome rides the grant edge,
    a serving requeue rides the flush edge; removing either races."""

    def test_rehome_after_grant_is_ordered(self):
        # the thief died: item 2 re-homes to the victim that granted
        # it and runs here — grant -> rehome orders the accum writes
        log = [
            rec("submit", 0.0, "a", [1]),
            rec("submit", 0.0, "a", [2]),
            rec("steal_grant", 0.5, "a", [2], batch=0),
            rec("flush", 1.0, "a", [1], batch=0),
            rec("accumulate", 1.5, "a", [1], batch=0),
            rec("rehome", 2.0, "a", [2], attempt=3, batch=0),
            rec("flush", 2.5, "a", [2], batch=1),
            rec("accumulate", 3.0, "a", [2], batch=1),
        ]
        assert analyze_log(log).clean

    def test_rehoming_an_executed_item_races(self):
        # item 2 already ran here; a later rehome-in is a duplicate
        log = [
            rec("submit", 0.0, "a", [2]),
            rec("flush", 0.5, "a", [2], batch=0),
            rec("accumulate", 0.7, "a", [2], batch=0),
            rec("rehome", 1.0, "a", [2], attempt=3, batch=1),
        ]
        report = analyze_log(log)
        assert not report.clean
        assert any(r.resource == "accum:2" for r in report.races)

    def test_requeue_then_reflush_is_ordered(self):
        # the serving loop cancels a dead batch's flush and the items
        # re-enter: flush -> requeue -> fresh flush chains cleanly
        log = [
            rec("submit", 0.0, "a", ["j0.s0.i0"]),
            rec("flush", 0.5, "a", ["j0.s0.i0"], batch=0),
            rec("requeue", 0.6, "crash", ["j0.s0.i0"], attempt=1, batch=0),
            rec("flush", 0.8, "a", ["j0.s0.i0"], batch=1),
            rec("accumulate", 1.0, "a", ["j0.s0.i0"], batch=1),
        ]
        assert analyze_log(log).clean

    def test_accumulate_after_requeue_races(self):
        # the "dead" worker finishes its batch anyway after the control
        # loop already requeued it: the accum writes are unordered
        log = [
            rec("submit", 0.0, "a", ["j0.s0.i0"]),
            rec("flush", 0.5, "a", ["j0.s0.i0"], batch=0),
            rec("requeue", 0.6, "crash", ["j0.s0.i0"], attempt=1, batch=0),
            rec("accumulate", 0.8, "a", ["j0.s0.i0"], batch=0),
        ]
        report = analyze_log(log)
        assert not report.clean
        assert any(r.resource == "accum:j0.s0.i0" for r in report.races)
