"""CLI contract tests: output formats, exit codes, rule selection."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

#: environment for subprocess runs: the src tree importable regardless of cwd
SUBPROC_ENV = {
    **os.environ,
    "PYTHONPATH": str(REPO_ROOT / "src")
    + os.pathsep
    + os.environ.get("PYTHONPATH", ""),
}

CLEAN = """
from __future__ import annotations

def visible() -> int:
    \"\"\"Documented.\"\"\"
    return 1
"""

DIRTY = """
import time

def stamp():
    return time.time()
"""


def write(tmp_path, relpath, source):
    """Write a dedented fixture file and return its path."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return target


class TestMainFunction:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", CLEAN)
        assert main([str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one_text(self, tmp_path, capsys):
        write(tmp_path, "runtime/mod.py", DIRTY)
        assert main([str(tmp_path), "--select", "DET001"]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "1 finding" in out

    def test_json_format_shape(self, tmp_path, capsys):
        write(tmp_path, "runtime/mod.py", DIRTY)
        assert main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["total"] >= 1
        assert payload["summary"]["by_rule"].get("DET001") == 1
        finding = payload["findings"][0]
        assert set(finding) == {"rule", "message", "path", "line", "col"}

    def test_json_clean_summary(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", CLEAN)
        assert main([str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"findings": [], "summary": {"total": 0, "by_rule": {}}}

    def test_ignore_silences_rule(self, tmp_path):
        write(tmp_path, "runtime/mod.py", DIRTY)
        assert (
            main(
                [str(tmp_path), "--ignore", "DET001,API002,API003"]
            )
            == 0
        )

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", CLEAN)
        assert main([str(tmp_path), "--select", "XX123"]) == 2

    def test_list_rules_catalogue(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "FLT001", "RES001", "RES002",
                        "RES003", "API001", "API002", "API003"):
            assert rule_id in out


class TestSarifFormat:
    def test_sarif_on_findings(self, tmp_path, capsys):
        write(tmp_path, "runtime/mod.py", DIRTY)
        assert main([str(tmp_path), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert any(r["ruleId"] == "DET001" for r in results)

    def test_sarif_clean_run_has_no_results(self, tmp_path, capsys):
        write(tmp_path, "pkg/mod.py", CLEAN)
        assert main([str(tmp_path), "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []


class TestUnparseableFiles:
    def test_broken_syntax_exits_two(self, tmp_path, capsys):
        write(tmp_path, "pkg/broken.py", "def broken(:\n")
        assert main([str(tmp_path)]) == 2
        assert "PARSE" in capsys.readouterr().out

    def test_non_utf8_file_exits_two_without_traceback(self, tmp_path):
        target = tmp_path / "pkg" / "binary.py"
        target.parent.mkdir(parents=True)
        target.write_bytes(b"x = '\xff\xfe'\n")
        assert main([str(tmp_path)]) == 2

    def test_null_bytes_exit_two_without_traceback(self, tmp_path):
        target = tmp_path / "pkg" / "nulls.py"
        target.parent.mkdir(parents=True)
        target.write_bytes(b"x = 1\x00\n")
        assert main([str(tmp_path)]) == 2

    def test_broken_fixture_via_subprocess(self, tmp_path):
        """Regression: the CLI must exit 2, not crash with a traceback."""
        write(tmp_path, "pkg/broken.py", "def broken(:\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=SUBPROC_ENV,
        )
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr

    def test_parseable_findings_still_exit_one(self, tmp_path):
        write(tmp_path, "runtime/mod.py", DIRTY)
        assert main([str(tmp_path), "--select", "DET001"]) == 1


class TestRacesSubcommand:
    def test_clean_scenario_exits_zero(self, capsys):
        assert main(["races", "serialized"]) == 0
        out = capsys.readouterr().out
        assert "serialized: CLEAN" in out
        assert "0 race(s)" in out

    def test_perturbation_flags_run_both_gates(self, capsys):
        assert main(["races", "serialized", "--perturb", "3", "--live", "1"]) == 0
        out = capsys.readouterr().out
        assert "perturb=3 live=1" in out

    def test_json_format_shape(self, capsys):
        assert main(["races", "serialized", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        (entry,) = payload["scenarios"]
        assert entry["scenario"] == "serialized"
        assert entry["report"]["summary"]["n_races"] == 0

    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["races", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_negative_k_exits_two(self, capsys):
        assert main(["races", "serialized", "--perturb", "-1"]) == 2
        assert "error" in capsys.readouterr().err


class TestModuleInvocation:
    def test_python_dash_m_on_findings(self, tmp_path):
        """``python -m repro.lint --format json`` exits nonzero on findings."""
        write(tmp_path, "runtime/mod.py", DIRTY)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path), "--format", "json"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=SUBPROC_ENV,
        )
        assert proc.returncode == 1
        assert json.loads(proc.stdout)["summary"]["total"] >= 1

    def test_python_dash_m_clean(self, tmp_path):
        write(tmp_path, "pkg/mod.py", CLEAN)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=SUBPROC_ENV,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
