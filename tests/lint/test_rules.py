"""Per-rule fixture tests: each rule fires on a violating snippet, stays
quiet on compliant code, and respects ``# repro: noqa[RULE]``."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint.core import LintConfig, lint_paths


def lint_snippet(tmp_path, relpath, source, select=None):
    """Write ``source`` at ``relpath`` under tmp_path and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    config = LintConfig(select=frozenset(select) if select else None)
    return lint_paths([tmp_path], config)


def rule_ids(findings):
    """The set of rule ids present in ``findings``."""
    return {f.rule for f in findings}


# -- DET001: wall-clock calls ------------------------------------------------------


class TestWallClock:
    def test_time_time_in_runtime_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/clock.py",
            """
            import time

            def stamp():
                return time.time()
            """,
            select={"DET001"},
        )
        assert rule_ids(findings) == {"DET001"}
        assert "time.time" in findings[0].message

    def test_from_import_and_datetime_fire(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "cluster/clock.py",
            """
            from time import monotonic
            from datetime import datetime

            def stamp():
                return monotonic(), datetime.now()
            """,
            select={"DET001"},
        )
        assert len(findings) == 2

    def test_outside_scope_is_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "experiments/wall.py",
            """
            import time

            def stamp():
                return time.time()
            """,
            select={"DET001"},
        )
        assert findings == []

    def test_env_now_is_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/ok.py",
            """
            def stamp(env):
                return env.now
            """,
            select={"DET001"},
        )
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/clock.py",
            """
            import time

            def stamp():
                return time.time()  # repro: noqa[DET001]
            """,
            select={"DET001"},
        )
        assert findings == []


# -- DET002: global / unseeded RNG -------------------------------------------------


class TestGlobalRng:
    def test_module_level_random_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "dht/jitter.py",
            """
            import random

            def jitter():
                return random.random()
            """,
            select={"DET002"},
        )
        assert rule_ids(findings) == {"DET002"}

    def test_numpy_random_module_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/noise.py",
            """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """,
            select={"DET002"},
        )
        assert rule_ids(findings) == {"DET002"}

    def test_unseeded_constructors_fire(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/rng.py",
            """
            import random
            import numpy as np

            def make():
                return random.Random(), np.random.default_rng()
            """,
            select={"DET002"},
        )
        assert len(findings) == 2
        assert all("seed" in f.message for f in findings)

    def test_seeded_generators_are_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/rng.py",
            """
            import random
            import numpy as np

            def make(seed):
                return random.Random(seed), np.random.default_rng(seed)
            """,
            select={"DET002"},
        )
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "dht/jitter.py",
            """
            import random

            def jitter():
                return random.random()  # repro: noqa[DET002]
            """,
            select={"DET002"},
        )
        assert findings == []


# -- FLT001: float-time equality ---------------------------------------------------


class TestFloatTimeEquality:
    def test_time_name_equality_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/flush.py",
            """
            def due(deadline, now):
                return deadline == now
            """,
            select={"FLT001"},
        )
        assert rule_ids(findings) == {"FLT001"}

    def test_attribute_time_inequality_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "analysis/span.py",
            """
            def moved(ev):
                return ev.start != ev.end
            """,
            select={"FLT001"},
        )
        assert len(findings) == 1

    def test_float_literal_equality_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/check.py",
            """
            def is_origin(x):
                return x == 0.0
            """,
            select={"FLT001"},
        )
        assert len(findings) == 1

    def test_ordering_comparisons_are_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/flush.py",
            """
            def due(deadline, now):
                return now >= deadline

            def count_ok(n_items):
                return n_items == 0
            """,
            select={"FLT001"},
        )
        assert findings == []

    def test_outside_scope_is_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "mra/geometry.py",
            """
            def same_instant(start, end):
                return start == end
            """,
            select={"FLT001"},
        )
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/flush.py",
            """
            def due(deadline, now):
                return deadline == now  # repro: noqa[FLT001]
            """,
            select={"FLT001"},
        )
        assert findings == []

    def test_approx_comparison_is_quiet(self, tmp_path):
        # == against pytest.approx() IS the sanctioned tolerance idiom
        findings = lint_snippet(
            tmp_path,
            "runtime/timing.py",
            """
            import pytest
            from pytest import approx

            def check(makespan, elapsed):
                assert makespan == pytest.approx(1.5)
                assert approx(2.5) == elapsed
            """,
            select={"FLT001"},
        )
        assert findings == []


# -- RES001: bare / swallowing except ----------------------------------------------


class TestBareExcept:
    def test_bare_except_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "kernels/risky.py",
            """
            def run(fn):
                try:
                    fn()
                except:
                    pass
            """,
            select={"RES001"},
        )
        assert rule_ids(findings) == {"RES001"}

    def test_swallowing_broad_except_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "kernels/risky.py",
            """
            def run(fn):
                try:
                    fn()
                except Exception:
                    pass
            """,
            select={"RES001"},
        )
        assert len(findings) == 1

    def test_handled_broad_except_is_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "kernels/risky.py",
            """
            def run(fn, log):
                try:
                    fn()
                except Exception as err:
                    log.append(err)
                    raise
            """,
            select={"RES001"},
        )
        assert findings == []

    def test_specific_except_is_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "kernels/risky.py",
            """
            def run(fn):
                try:
                    return fn()
                except KeyError:
                    return None
            """,
            select={"RES001"},
        )
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "kernels/risky.py",
            """
            def run(fn):
                try:
                    fn()
                except:  # repro: noqa[RES001]
                    pass
            """,
            select={"RES001"},
        )
        assert findings == []


# -- RES002: swallowed guard errors ------------------------------------------------


class TestSwallowedGuardError:
    def test_swallowed_hardware_error_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/push.py",
            """
            from repro.errors import HardwareModelError

            def push(cache, keys, nbytes):
                try:
                    cache.bytes_to_transfer(keys, nbytes)
                except HardwareModelError:
                    pass
            """,
            select={"RES002"},
        )
        assert rule_ids(findings) == {"RES002"}
        assert "HardwareModelError" in findings[0].message

    def test_swallowed_tuple_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/push2.py",
            """
            from repro.errors import HardwareModelError, RuntimeConfigError

            def push(fns):
                for fn in fns:
                    try:
                        fn()
                    except (HardwareModelError, RuntimeConfigError):
                        continue
            """,
            select={"RES002"},
        )
        assert len(findings) == 1

    def test_handled_guard_error_is_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/push.py",
            """
            from repro.errors import HardwareModelError

            def push(cache, keys, nbytes, fallback):
                try:
                    return cache.bytes_to_transfer(keys, nbytes)
                except HardwareModelError:
                    return fallback(keys)
            """,
            select={"RES002"},
        )
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/push.py",
            """
            from repro.errors import HardwareModelError

            def push(fn):
                try:
                    fn()
                except HardwareModelError:  # repro: noqa[RES002]
                    pass
            """,
            select={"RES002"},
        )
        assert findings == []


# -- RES003: cache-state bypass ----------------------------------------------------


class TestCacheBypass:
    def test_attribute_write_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/hack.py",
            """
            def evict_all(cache):
                cache.resident_bytes = 0
            """,
            select={"RES003"},
        )
        assert rule_ids(findings) == {"RES003"}

    def test_set_mutation_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/hack.py",
            """
            def sneak(cache, key):
                cache._resident.add(key)
            """,
            select={"RES003"},
        )
        assert len(findings) == 1

    def test_augmented_write_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/hack.py",
            """
            def grow(cache, n):
                cache.resident_bytes += n
            """,
            select={"RES003"},
        )
        assert len(findings) == 1

    def test_gpu_cache_module_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "kernels/gpu_cache.py",
            """
            class GpuBlockCache:
                def __init__(self):
                    self.resident_bytes = 0
                    self._resident = set()

                def insert(self, key):
                    self._resident.add(key)
            """,
            select={"RES003"},
        )
        assert findings == []

    def test_api_use_is_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/ok.py",
            """
            def ship(cache, keys, nbytes):
                return cache.bytes_to_transfer(keys, nbytes)
            """,
            select={"RES003"},
        )
        assert findings == []


# -- API001: mutable defaults ------------------------------------------------------


class TestMutableDefault:
    def test_list_default_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere/api.py",
            """
            def collect(items=[]):
                return items
            """,
            select={"API001"},
        )
        assert rule_ids(findings) == {"API001"}

    def test_dict_call_and_kwonly_fire(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere/api.py",
            """
            def configure(opts=dict(), *, cache={}):
                return opts, cache
            """,
            select={"API001"},
        )
        assert len(findings) == 2

    def test_none_default_is_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere/api.py",
            """
            def collect(items=None, scale=1.0, name="x"):
                return items or []
            """,
            select={"API001"},
        )
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere/api.py",
            """
            def collect(items=[]):  # repro: noqa[API001]
                return items
            """,
            select={"API001"},
        )
        assert findings == []


# -- API002: missing future annotations --------------------------------------------


class TestFutureAnnotations:
    def test_annotated_module_without_import_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere/mod.py",
            """
            def scale(x: float) -> float:
                return 2 * x
            """,
            select={"API002"},
        )
        assert rule_ids(findings) == {"API002"}

    def test_with_import_is_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere/mod.py",
            """
            from __future__ import annotations

            def scale(x: float) -> float:
                return 2 * x
            """,
            select={"API002"},
        )
        assert findings == []

    def test_unannotated_module_is_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere/mod.py",
            """
            VERSION = "1.0"

            def scale(x):
                return 2 * x
            """,
            select={"API002"},
        )
        assert findings == []


# -- API003: public docstrings -----------------------------------------------------


class TestPublicDocstring:
    def test_missing_docstring_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere/mod.py",
            """
            def visible():
                return 1
            """,
            select={"API003"},
        )
        assert rule_ids(findings) == {"API003"}
        assert "visible" in findings[0].message

    def test_method_of_public_class_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere/mod.py",
            '''
            class Runtime:
                """A documented class."""

                def execute(self):
                    return 1
            ''',
            select={"API003"},
        )
        assert len(findings) == 1

    def test_private_nested_and_documented_are_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere/mod.py",
            '''
            def _helper():
                return 1

            def visible():
                """Documented."""
                def closure():
                    return 2
                return closure

            class _Internal:
                def anything(self):
                    return 3
            ''',
            select={"API003"},
        )
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere/mod.py",
            """
            def visible():  # repro: noqa[API003]
                return 1
            """,
            select={"API003"},
        )
        assert findings == []


# -- engine behaviour --------------------------------------------------------------


class TestEngine:
    def test_bare_noqa_suppresses_everything(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/multi.py",
            """
            import time

            def stamp(now):
                \"\"\"Docstring keeps API003 quiet; noqa covers the rest.\"\"\"
                return time.time() == now  # repro: noqa
            """,
        )
        assert findings == []

    def test_noqa_on_other_line_does_not_suppress(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/multi.py",
            """
            import time  # repro: noqa[DET001]

            def stamp():
                return time.time()
            """,
            select={"DET001"},
        )
        assert len(findings) == 1

    def test_unknown_rule_selection_raises(self, tmp_path):
        from repro.lint.core import LintUsageError

        with pytest.raises(LintUsageError):
            lint_snippet(tmp_path, "a/b.py", "x = 1\n", select={"NOPE999"})

    def test_syntax_error_reported_as_parse_finding(self, tmp_path):
        findings = lint_snippet(tmp_path, "a/broken.py", "def broken(:\n")
        assert [f.rule for f in findings] == ["PARSE"]

    def test_findings_are_sorted_and_rendered(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/two.py",
            """
            import time

            def b():
                return time.time()

            def a():
                return time.time()
            """,
            select={"DET001"},
        )
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        rendered = findings[0].render()
        assert "DET001" in rendered and rendered.count(":") >= 3


# -- RES004: unbounded retry loops -------------------------------------------------


class TestUnboundedRetry:
    def test_except_continue_without_counter_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/retry.py",
            """
            def run_forever(dispatch, batch):
                while True:
                    try:
                        return dispatch(batch)
                    except RuntimeError:
                        continue
            """,
            select={"RES004"},
        )
        assert rule_ids(findings) == {"RES004"}
        assert "attempt counter" in findings[0].message

    def test_attempt_counter_is_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/retry.py",
            """
            def run_bounded(dispatch, batch, budget):
                attempt = 0
                while True:
                    try:
                        return dispatch(batch)
                    except RuntimeError:
                        attempt += 1
                        if attempt >= budget:
                            raise
                        continue
            """,
            select={"RES004"},
        )
        assert findings == []

    def test_reraising_handler_is_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/retry.py",
            """
            def run_once_then_fail(dispatch, batch, retriable):
                while True:
                    try:
                        return dispatch(batch)
                    except RuntimeError as e:
                        if not retriable(e):
                            raise
                        continue
            """,
            select={"RES004"},
        )
        assert findings == []

    def test_breaking_handler_is_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/retry.py",
            """
            def run(dispatch, batches):
                done = []
                while True:
                    try:
                        done.append(dispatch(batches))
                    except RuntimeError:
                        break
                return done
            """,
            select={"RES004"},
        )
        assert findings == []

    def test_bounded_condition_loop_is_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/retry.py",
            """
            def run(dispatch, batch, attempt=0):
                while attempt < 3:
                    try:
                        return dispatch(batch)
                    except RuntimeError:
                        attempt = attempt + 1
                        continue
            """,
            select={"RES004"},
        )
        assert findings == []

    def test_nested_loop_continue_not_attributed_to_outer(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/retry.py",
            """
            def drain(queues, pop):
                while True:
                    for q in queues:
                        try:
                            pop(q)
                        except KeyError:
                            continue
                    if not any(queues):
                        return
            """,
            select={"RES004"},
        )
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/retry.py",
            """
            def spin(poll):
                while True:
                    try:
                        return poll()
                    except TimeoutError:  # repro: noqa[RES004]
                        continue
            """,
            select={"RES004"},
        )
        assert findings == []


# -- RES005: aliased snapshot state ------------------------------------------------


class TestAliasedSnapshotState:
    def test_bare_name_state_kwarg_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "recovery/ckpt.py",
            """
            def snap(Checkpoint, acc):
                return Checkpoint(seq=0, results=acc)
            """,
            select={"RES005"},
        )
        assert rule_ids(findings) == {"RES005"}
        assert "aliases mutable state" in findings[0].message

    def test_attribute_and_subscript_fire(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "recovery/ckpt.py",
            """
            def snap(Checkpoint, self, table):
                a = Checkpoint(items=self.pending)
                b = Checkpoint(state=table["rank0"])
                return a, b
            """,
            select={"RES005"},
        )
        assert len(findings) == 2
        assert rule_ids(findings) == {"RES005"}

    def test_snapshot_suffix_class_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "recovery/ckpt.py",
            """
            def snap(RankSnapshot, live):
                return RankSnapshot(payload=live)
            """,
            select={"RES005"},
        )
        assert rule_ids(findings) == {"RES005"}

    def test_copied_state_is_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "recovery/ckpt.py",
            """
            import copy

            def snap(Checkpoint, acc, pending):
                return Checkpoint(
                    seq=0,
                    results=copy.deepcopy(acc),
                    items=tuple(pending),
                    item_ids=[id(i) for i in pending],
                    state={},
                )
            """,
            select={"RES005"},
        )
        assert findings == []

    def test_non_state_kwargs_and_other_ctors_quiet(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "recovery/ckpt.py",
            """
            def snap(Checkpoint, Batch, rank, acc):
                a = Checkpoint(rank=rank, seq=0, parent=-1)
                b = Batch(results=acc)
                return a, b
            """,
            select={"RES005"},
        )
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "recovery/ckpt.py",
            """
            def snap(Checkpoint, acc):
                return Checkpoint(results=acc)  # repro: noqa[RES005]
            """,
            select={"RES005"},
        )
        assert findings == []
