"""Per-rule fixture tests for the CONC concurrency-hygiene family."""

from __future__ import annotations

import textwrap

from repro.lint.core import LintConfig, lint_paths


def lint_snippet(tmp_path, relpath, source, select=None):
    """Write ``source`` at ``relpath`` under tmp_path and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    config = LintConfig(select=frozenset(select) if select else None)
    return lint_paths([tmp_path], config)


def rule_ids(findings):
    """The set of rule ids present in ``findings``."""
    return {f.rule for f in findings}


# -- CONC001: module-level mutable state ------------------------------------------


class TestModuleState:
    def test_module_level_dict_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/state.py",
            """
            pending = {}
            """,
            select={"CONC001"},
        )
        assert rule_ids(findings) == {"CONC001"}
        assert "pending" in findings[0].message

    def test_mutable_constructor_and_annassign_fire(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "cluster/state.py",
            """
            from collections import defaultdict

            queues: dict = defaultdict(list)
            retries = Counter()
            """,
            select={"CONC001"},
        )
        assert len(findings) == 2

    def test_global_write_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "recovery/state.py",
            """
            _epoch = 0

            def bump():
                \"\"\"Doc.\"\"\"
                global _epoch
                _epoch += 1
            """,
            select={"CONC001"},
        )
        assert rule_ids(findings) == {"CONC001"}
        assert "_epoch" in findings[0].message

    def test_constant_case_and_dunders_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/consts.py",
            """
            __all__ = ["a"]
            DEFAULTS = {"a": 1}
            _LAZY = {"mod": "pkg.mod"}
            """,
            select={"CONC001"},
        )
        assert findings == []

    def test_out_of_scope_files_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "analysis/state.py",
            """
            cache = {}
            """,
            select={"CONC001"},
        )
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/state.py",
            """
            registry = {}  # repro: noqa[CONC001]
            """,
            select={"CONC001"},
        )
        assert findings == []


# -- CONC002: container RMW inside a DES process ----------------------------------


class TestSharedContainerRmw:
    def test_rmw_of_attribute_container_in_generator_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/proc.py",
            """
            def worker(self, env):
                \"\"\"Doc.\"\"\"
                while True:
                    yield env.timeout(1.0)
                    self.depth[0] += 1
            """,
            select={"CONC002"},
        )
        assert rule_ids(findings) == {"CONC002"}

    def test_local_container_is_fine(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/proc.py",
            """
            def worker(env):
                \"\"\"Doc.\"\"\"
                counts = {}
                yield env.timeout(1.0)
                counts["a"] += 1
            """,
            select={"CONC002"},
        )
        assert findings == []

    def test_non_generator_function_is_fine(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/proc.py",
            """
            def tally(shared):
                \"\"\"Doc.\"\"\"
                shared["a"] += 1
            """,
            select={"CONC002"},
        )
        assert findings == []

    def test_yield_in_nested_def_does_not_make_outer_a_process(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/proc.py",
            """
            def outer(shared):
                \"\"\"Doc.\"\"\"
                def gen():
                    yield 1
                shared["a"] += 1
                return gen
            """,
            select={"CONC002"},
        )
        assert findings == []


# -- CONC003: literal metric timestamps -------------------------------------------


class TestLiteralTimestamp:
    def test_literal_stamp_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/metrics.py",
            """
            def publish(registry):
                \"\"\"Doc.\"\"\"
                registry.counter("runtime.batches").inc(0.0)
            """,
            select={"CONC003"},
        )
        assert rule_ids(findings) == {"CONC003"}
        assert "simulated time" in findings[0].message

    def test_clock_stamp_is_fine(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/metrics.py",
            """
            def publish(registry, env):
                \"\"\"Doc.\"\"\"
                registry.gauge("runtime.depth").set(env.now, 3)
                registry.histogram("runtime.lat").observe(env.now, 0.5)
            """,
            select={"CONC003"},
        )
        assert findings == []

    def test_non_metric_receiver_is_fine(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/metrics.py",
            """
            def other(thing):
                \"\"\"Doc.\"\"\"
                thing.helper("x").set(1.0, 2)
            """,
            select={"CONC003"},
        )
        assert findings == []


def test_conc_rules_listed_with_event_handler_scope():
    from repro.lint.core import all_rules

    rules = all_rules()
    for rule_id in ("CONC001", "CONC002", "CONC003"):
        assert rules[rule_id].scope == (
            "runtime",
            "cluster",
            "recovery",
            "serve",
        )
