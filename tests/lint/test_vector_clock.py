"""Unit tests for the sparse vector clock."""

from __future__ import annotations

from repro.lint.vector_clock import VectorClock


class TestVectorClock:
    def test_fresh_clock_is_empty(self):
        vc = VectorClock()
        assert vc.get(("a",)) == 0

    def test_tick_advances_own_component(self):
        vc = VectorClock()
        vc.tick(("a",))
        vc.tick(("a",))
        assert vc.get(("a",)) == 2
        assert vc.get(("b",)) == 0

    def test_join_takes_componentwise_max(self):
        a, b = VectorClock(), VectorClock()
        a.tick(("x",))
        a.tick(("x",))
        b.tick(("x",))
        b.tick(("y",))
        a.join(b)
        assert a.get(("x",)) == 2
        assert a.get(("y",)) == 1

    def test_copy_is_independent(self):
        vc = VectorClock()
        vc.tick(("a",))
        snap = vc.copy()
        vc.tick(("a",))
        assert snap.get(("a",)) == 1
        assert vc.get(("a",)) == 2

    def test_leq_is_the_happens_before_order(self):
        early = VectorClock()
        early.tick(("a",))
        late = early.copy()
        late.tick(("a",))
        late.tick(("b",))
        assert early.leq(late)
        assert not late.leq(early)
        assert early.leq(early)

    def test_concurrent_clocks(self):
        a, b = VectorClock(), VectorClock()
        a.tick(("a",))
        b.tick(("b",))
        assert a.concurrent(b)
        assert b.concurrent(a)
        # ordering either way kills concurrency
        b.join(a)
        assert not a.concurrent(b)

    def test_empty_clock_precedes_everything(self):
        vc = VectorClock()
        other = VectorClock()
        other.tick(("z",))
        assert vc.leq(other)
        assert not other.leq(vc)
