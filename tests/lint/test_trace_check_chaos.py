"""Invariant #10 unit tests: requeue/rehome ledger accounting under
crash recovery (repro.lint.trace_check)."""

from __future__ import annotations

import pytest

from repro.lint.trace_check import (
    TraceCheckError,
    check_runtime_log,
    find_migration_violations,
    find_violations,
)
from repro.runtime.trace import RuntimeLogRecord


def rec(op, at, kind="k", ids=(), attempt=0, batch=-1):
    return RuntimeLogRecord(
        op=op, at=at, kind=kind, ids=tuple(ids), attempt=attempt, batch=batch
    )


def serve_prefix():
    """One admitted job with a flushed first batch."""
    return [
        rec("arrive", 0.0, "standard", ["j0"], batch=0),
        rec("admit", 0.0, "standard", ["j0"], batch=0),
        rec("submit", 0.0, "a", ["j0.s0.i0"]),
        rec("submit", 0.0, "a", ["j0.s0.i1"]),
        rec("flush", 0.1, "a", ["j0.s0.i0", "j0.s0.i1"], batch=0),
    ]


class TestRequeueReenter:
    def test_reenter_cancels_the_dead_flush(self):
        log = serve_prefix() + [
            rec("requeue", 0.2, "crash", ["j0.s0.i0", "j0.s0.i1"],
                attempt=1, batch=1),
            rec("flush", 0.3, "a", ["j0.s0.i0", "j0.s0.i1"], batch=1),
            rec("accumulate", 0.4, "a", ["j0.s0.i0", "j0.s0.i1"], batch=1),
        ]
        assert find_violations(log) == []
        check_runtime_log(log)

    def test_reenter_moves_items_to_the_kind_tail(self):
        # another job's item submitted after j0: once j0's items
        # requeue, flushing the other item first is legal FIFO
        log = serve_prefix() + [
            rec("arrive", 0.15, "standard", ["j1"], batch=0),
            rec("admit", 0.15, "standard", ["j1"], batch=0),
            rec("submit", 0.15, "a", ["j1.s0.i0"]),
            rec("requeue", 0.2, "crash", ["j0.s0.i0", "j0.s0.i1"],
                attempt=1, batch=1),
            rec("flush", 0.3, "a", ["j1.s0.i0"], batch=1),
            rec("accumulate", 0.35, "a", ["j1.s0.i0"], batch=1),
            rec("flush", 0.4, "a", ["j0.s0.i0", "j0.s0.i1"], batch=2),
            rec("accumulate", 0.5, "a", ["j0.s0.i0", "j0.s0.i1"], batch=2),
        ]
        assert find_violations(log) == []

    def test_requeue_without_live_flush_is_flagged(self):
        log = serve_prefix() + [
            rec("accumulate", 0.15, "a", ["j0.s0.i0", "j0.s0.i1"], batch=0),
            rec("requeue", 0.2, "crash", ["j0.s0.i0"], attempt=1, batch=1),
        ]
        violations = find_violations(log)
        assert any("without a live flush" in v for v in violations)

    def test_double_requeue_of_one_flush_is_flagged(self):
        log = serve_prefix() + [
            rec("requeue", 0.2, "crash", ["j0.s0.i0", "j0.s0.i1"],
                attempt=1, batch=1),
            rec("requeue", 0.25, "crash", ["j0.s0.i0"], attempt=2, batch=2),
        ]
        violations = find_violations(log)
        assert any("without a live flush" in v for v in violations)

    def test_unknown_verdict_is_flagged(self):
        log = serve_prefix() + [
            rec("requeue", 0.2, "cosmic-ray", ["j0.s0.i0"], attempt=1,
                batch=1),
        ]
        assert any(
            "unknown verdict" in v for v in find_violations(log)
        )

    def test_requeue_of_unadmitted_job_is_flagged(self):
        log = [
            rec("submit", 0.0, "a", ["j9.s0.i0"]),
            rec("flush", 0.1, "a", ["j9.s0.i0"], batch=0),
            rec("requeue", 0.2, "crash", ["j9.s0.i0"], attempt=1, batch=1),
            rec("flush", 0.3, "a", ["j9.s0.i0"], batch=2),
            rec("accumulate", 0.4, "a", ["j9.s0.i0"], batch=2),
        ]
        assert any(
            "never admitted" in v for v in find_violations(log)
        )


class TestRequeueDrop:
    def test_drop_retires_the_flushed_items(self):
        log = serve_prefix() + [
            rec("requeue", 0.2, "retry-budget", ["j0.s0.i0", "j0.s0.i1"],
                attempt=1, batch=1),
            rec("deadline_miss", 0.2, "standard", ["j0"], batch=0),
        ]
        assert find_violations(log) == []

    def test_drop_retires_the_queued_backlog_too(self):
        # i1 was never flushed: the drop purges it from the queue
        log = [
            rec("arrive", 0.0, "standard", ["j0"], batch=0),
            rec("admit", 0.0, "standard", ["j0"], batch=0),
            rec("submit", 0.0, "a", ["j0.s0.i0"]),
            rec("submit", 0.0, "a", ["j0.s0.i1"]),
            rec("flush", 0.1, "a", ["j0.s0.i0"], batch=0),
            rec("requeue", 0.2, "queue-depth", ["j0.s0.i0", "j0.s0.i1"],
                attempt=1, batch=1),
            rec("deadline_miss", 0.2, "standard", ["j0"], batch=0),
        ]
        assert find_violations(log) == []

    def test_reenter_cannot_cover_a_never_flushed_item(self):
        # the pending-item escape hatch is drop-only
        log = [
            rec("arrive", 0.0, "standard", ["j0"], batch=0),
            rec("admit", 0.0, "standard", ["j0"], batch=0),
            rec("submit", 0.0, "a", ["j0.s0.i0"]),
            rec("requeue", 0.2, "crash", ["j0.s0.i0"], attempt=1, batch=1),
            rec("flush", 0.3, "a", ["j0.s0.i0"], batch=2),
            rec("accumulate", 0.4, "a", ["j0.s0.i0"], batch=2),
        ]
        assert any(
            "without a live flush" in v for v in find_violations(log)
        )

    def test_dropping_twice_is_flagged(self):
        log = serve_prefix() + [
            rec("requeue", 0.2, "retry-budget", ["j0.s0.i0"], attempt=1,
                batch=1),
            rec("requeue", 0.25, "queue-depth", ["j0.s0.i1"], attempt=1,
                batch=1),
        ]
        assert any(
            "dropped twice" in v for v in find_violations(log)
        )

    def test_accumulate_after_drop_is_flagged(self):
        log = serve_prefix() + [
            rec("requeue", 0.2, "retry-budget", ["j0.s0.i0"], attempt=1,
                batch=1),
            rec("accumulate", 0.3, "a", ["j0.s0.i1"], batch=0),
        ]
        violations = find_violations(log)
        assert any("accumulated after its drop" in v for v in violations)
        with pytest.raises(TraceCheckError):
            check_runtime_log(log)


class TestRehomeLedger:
    def _grant(self, rank=0):
        """A victim log granting t0/t1 to a thief."""
        return [
            rec("submit", 0.0, "a", ["t0"]),
            rec("submit", 0.0, "a", ["t1"]),
            rec("steal_request", 0.1, "a", [], attempt=1, batch=7),
            rec("steal_grant", 0.2, "a", ["t0", "t1"], attempt=1, batch=7),
        ]

    def test_full_rehome_covers_a_wire_dead_grant(self):
        victim = self._grant() + [
            rec("rehome", 0.3, "a", ["t0", "t1"], attempt=1, batch=7),
            rec("flush", 0.4, "a", ["t0", "t1"], batch=0),
            rec("accumulate", 0.5, "a", ["t0", "t1"], batch=0),
        ]
        assert find_migration_violations({0: victim}) == []

    def test_partial_rehome_of_a_dead_grant_is_flagged(self):
        victim = self._grant() + [
            rec("rehome", 0.3, "a", ["t0"], attempt=1, batch=7),
            rec("flush", 0.4, "a", ["t0"], batch=0),
            rec("accumulate", 0.5, "a", ["t0"], batch=0),
        ]
        violations = find_migration_violations({0: victim})
        assert any("partially re-homed" in v for v in violations)

    def test_rehome_without_a_grant_is_flagged(self):
        # request 9 was never granted here; an unrelated grant keeps
        # the steal checks armed (no-steal logs are skipped wholesale)
        victim = self._grant() + [
            rec("rehome", 0.25, "a", ["t0", "t1"], attempt=1, batch=7),
            rec("rehome", 0.3, "a", ["t0"], attempt=1, batch=9),
            rec("flush", 0.4, "a", ["t0", "t1"], batch=0),
            rec("accumulate", 0.5, "a", ["t0", "t1"], batch=0),
        ]
        violations = find_migration_violations({0: victim})
        assert any(
            "rehome" in v and "grant" in v for v in violations
        )

    def _stolen_elsewhere(self):
        """A grant+migrate pair keeping the steal checks armed (logs
        with no steal traffic are skipped wholesale)."""
        victim = [
            rec("submit", 0.0, "a", ["t9"]),
            rec("steal_request", 0.05, "a", [], attempt=2, batch=8),
            rec("steal_grant", 0.06, "a", ["t9"], attempt=2, batch=8),
        ]
        thief = [
            rec("migrate", 0.07, "a", ["t9"], attempt=2, batch=8),
            rec("flush", 0.1, "a", ["t9"], batch=0),
            rec("accumulate", 0.2, "a", ["t9"], batch=0),
        ]
        return victim, thief

    def test_net_accounting_forgives_rollback_then_replay(self):
        # crashy log: the item accumulates twice but one is rolled
        # back — net exactly one
        victim, thief = self._stolen_elsewhere()
        victim += [
            rec("submit", 0.08, "a", ["t0"]),
            rec("flush", 0.1, "a", ["t0"], batch=1),
            rec("accumulate", 0.2, "a", ["t0"], batch=1),
            rec("rollback", 0.3, "0", ["t0"]),
            rec("restore", 0.3, "0", []),
            rec("submit", 0.3, "a", ["t0"]),
            rec("flush", 0.4, "a", ["t0"], batch=2),
            rec("accumulate", 0.5, "a", ["t0"], batch=2),
        ]
        assert find_migration_violations({0: victim, 1: thief}) == []

    def test_net_over_accumulation_is_still_flagged(self):
        # same replay but nothing was rolled back: net two accumulates
        victim, thief = self._stolen_elsewhere()
        victim += [
            rec("submit", 0.08, "a", ["t0"]),
            rec("flush", 0.1, "a", ["t0"], batch=1),
            rec("accumulate", 0.2, "a", ["t0"], batch=1),
            rec("restore", 0.3, "0", []),
            rec("submit", 0.3, "a", ["t0"]),
            rec("flush", 0.4, "a", ["t0"], batch=2),
            rec("accumulate", 0.5, "a", ["t0"], batch=2),
        ]
        violations = find_migration_violations({0: victim, 1: thief})
        assert any("net-accumulated" in v for v in violations)
