"""Unit tests for the schedule-perturbation harness."""

from __future__ import annotations

import random

import pytest

from repro.lint.perturb import (
    legal_event_reordering,
    legal_log_reordering,
    verify_replay_invariance,
    verify_scenario,
)
from repro.lint.races import _thread_of
from repro.runtime.trace import RuntimeLogRecord


def rec(op, at, kind="k", ids=(), batch=-1):
    """Shorthand record constructor."""
    return RuntimeLogRecord(op=op, at=at, kind=kind, ids=tuple(ids), batch=batch)


def busy_instant_log():
    """Several same-instant records across three logical threads."""
    return [
        rec("submit", 0.0, "a", [1]),
        rec("submit", 0.0, "a", [2]),
        rec("flush", 0.5, "a", [1], batch=0),
        rec("flush", 0.5, "a", [2], batch=1),
        rec("begin_transfer", 0.5, "a", ["h0"], batch=0),
        rec("begin_transfer", 0.5, "a", ["h1"], batch=1),
        rec("accumulate", 0.9, "a", [1], batch=0),
        rec("accumulate", 0.9, "a", [2], batch=1),
    ]


class TestLegalLogReordering:
    def test_preserves_multiset(self):
        log = busy_instant_log()
        out = legal_log_reordering(log, random.Random("x"))
        assert sorted(out, key=repr) == sorted(log, key=repr)

    def test_preserves_per_thread_program_order(self):
        log = busy_instant_log()
        for seed in range(20):
            out = legal_log_reordering(log, random.Random(str(seed)))
            for thread in {_thread_of(r) for r in log}:
                want = [r for r in log if _thread_of(r) == thread]
                got = [r for r in out if _thread_of(r) == thread]
                assert got == want

    def test_never_crosses_instants(self):
        log = busy_instant_log()
        for seed in range(20):
            out = legal_log_reordering(log, random.Random(str(seed)))
            assert [r.at for r in out] == [r.at for r in log]

    def test_actually_permutes_something(self):
        log = busy_instant_log()
        outs = {
            tuple(repr(r) for r in legal_log_reordering(log, random.Random(str(s))))
            for s in range(20)
        }
        assert len(outs) > 1

    def test_event_reordering_is_a_permutation(self):
        from repro.runtime.trace import TraceEvent

        events = [
            TraceEvent(start=0.0, end=1.0, category="c", label=f"e{i}", batch=i)
            for i in range(6)
        ]
        out = legal_event_reordering(events, random.Random("x"))
        assert sorted(out, key=repr) == sorted(events, key=repr)


class TestReplayInvariance:
    @pytest.fixture(scope="class")
    def serialized_dump(self):
        from repro.obs.scenarios import run_scenario

        return run_scenario("serialized").dump

    def test_ten_reorderings_are_byte_identical(self, serialized_dump):
        # the ISSUE acceptance bar: >= 10 legal reorderings per scenario
        assert verify_replay_invariance(serialized_dump, k=10) == []

    def test_an_illegal_perturbation_is_caught(self, serialized_dump):
        # moving a record to another instant is NOT a legal reordering;
        # a harness that accepted it would be vacuous
        import dataclasses

        from repro.obs.dump import RankDump, RunDump

        rd = serialized_dump.ranks[0]
        moved = [
            dataclasses.replace(r, at=r.at + 1.0) if i == 0 else r
            for i, r in enumerate(rd.log)
        ]
        broken = RunDump(
            meta=dict(serialized_dump.meta),
            ranks=[RankDump(rd.rank, rd.events, moved, dict(rd.summary))]
            + list(serialized_dump.ranks[1:]),
            registry=serialized_dump.registry,
        )
        assert broken.dumps() != serialized_dump.dumps()


class TestVerifyScenario:
    def test_serialized_replay_and_live_clean(self):
        result = verify_scenario("serialized", k_replay=10, k_live=2)
        assert result.clean, result.failures
        assert result.n_replay == 10
        assert result.n_live == 2

    def test_checkpoint_scenario_survives_live_schedules(self):
        # the recovery arc under adversarial tie-breaks: restore
        # barriers and the accumulate ledger must hold on every schedule
        result = verify_scenario("checkpoint", k_replay=5, k_live=2)
        assert result.clean, result.failures

    def test_zero_k_runs_nothing(self):
        result = verify_scenario("serialized", k_replay=0, k_live=0)
        assert result.clean
        assert result.n_replay == 0 and result.n_live == 0
