"""SARIF output: document shape and lossless round-trip."""

from __future__ import annotations

import json

from repro.lint.core import Finding
from repro.lint.sarif import (
    SARIF_VERSION,
    findings_from_sarif,
    render_sarif,
    to_sarif,
)

FIXTURE = [
    Finding(rule="DET001", message="wall-clock call time.time()",
            path="src/repro/runtime/node.py", line=12, col=5),
    Finding(rule="CONC001", message="module-level mutable container 'q'",
            path="src/repro/cluster/sim.py", line=3, col=1),
    Finding(rule="PARSE", message="cannot parse file: invalid syntax",
            path="src/repro/broken.py", line=1, col=9),
]


class TestDocumentShape:
    def test_version_and_schema(self):
        doc = to_sarif([])
        assert doc["version"] == SARIF_VERSION
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(doc["runs"]) == 1

    def test_driver_lists_the_rule_catalogue(self):
        doc = to_sarif([])
        rules = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert {"DET001", "CONC001", "CONC002", "CONC003"} <= rules

    def test_every_result_rule_id_resolves(self):
        doc = to_sarif(FIXTURE)
        run = doc["runs"][0]
        listed = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {r["ruleId"] for r in run["results"]} <= listed

    def test_parse_findings_are_errors(self):
        doc = to_sarif(FIXTURE)
        levels = {
            r["ruleId"]: r["level"] for r in doc["runs"][0]["results"]
        }
        assert levels["PARSE"] == "error"
        assert levels["DET001"] == "warning"


class TestRoundTrip:
    def test_fixture_round_trips_losslessly(self):
        assert findings_from_sarif(to_sarif(FIXTURE)) == FIXTURE

    def test_render_is_valid_json_and_round_trips(self):
        doc = json.loads(render_sarif(FIXTURE))
        assert findings_from_sarif(doc) == FIXTURE

    def test_empty_round_trip(self):
        assert findings_from_sarif(to_sarif([])) == []

    def test_real_lint_findings_round_trip(self, tmp_path):
        from repro.lint.core import lint_paths

        bad = tmp_path / "runtime" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        findings = lint_paths([tmp_path])
        assert findings  # sanity: the fixture does produce findings
        assert findings_from_sarif(to_sarif(findings)) == findings
