"""Tier-1 enforcement: the analyzer runs clean over ``src/repro``.

This is the teeth of the lint subsystem — any rule violation introduced
anywhere in the package (without an explicit, justified
``# repro: noqa[RULE]``) fails the test suite.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.core import lint_paths

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_src_tree_exists():
    """Sanity: the path the enforcement test lints is the real package."""
    assert (SRC_REPRO / "runtime" / "events.py").is_file()


def test_analyzer_clean_on_src_repro():
    """Every rule passes on the whole package (zero findings)."""
    findings = lint_paths([SRC_REPRO])
    rendered = "\n".join(f.render() for f in findings)
    assert not findings, f"repro.lint found violations in src/repro:\n{rendered}"
