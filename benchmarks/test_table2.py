"""Table II — CPU-16 vs GPU vs hybrid for k=20 (the cuBLAS regime).

Coulomb, d=3, k=20, precision 1e-10; tensors are 8x larger than k=10,
so the GPU side uses cuBLAS and the CPU suffers cache misses.  Anchored
to the paper's CPU-16 time of 173.3 s.
"""

from repro.experiments.tables import PAPER_TABLE2, run_table2

from benchmarks.conftest import bench_scale


def test_table2(run_once, show):
    """Regenerate Table 2 and assert its winner/factor claims."""
    result = run_once(run_table2, bench_scale())
    show(result)
    cpu, gpu, hybrid = (
        result.data["cpu"], result.data["gpu"], result.data["hybrid"]
    )

    # "the larger the tensor size, the better the GPU fares vs the CPU"
    assert gpu < cpu
    paper_ratio = PAPER_TABLE2["cpu16"] / PAPER_TABLE2["gpu"]  # 1.27
    assert 0.6 * paper_ratio < cpu / gpu < 2.2 * paper_ratio
    assert hybrid < min(cpu, gpu)
    assert hybrid >= 0.9 * result.data["optimal"]
