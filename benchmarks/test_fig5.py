"""Figure 5 — GFLOPS of batched (k^2, k) x (k, k) multiplications (3-D).

Custom fused kernel vs cuBLAS on the GTX 480 testbed, batches of 60
multiplications, k = 10..28.  Shape to reproduce: the custom kernel
well above cuBLAS at small k; cuBLAS climbing with matrix size and
closing the gap at the top of the range.
"""

from repro.experiments.figures import FIGURE_KS, run_fig5


def test_fig5(run_once, show):
    """Regenerate Figure 5 and assert its scaling-shape claims."""
    result = run_once(run_fig5)
    show(result)
    rows = result.data["rows"]

    # custom kernel wins for small matrices (the paper's 2.2x claim)
    for k in (10, 12, 16, 20):
        custom, cublas = rows[k]
        assert custom > 1.5 * cublas, k
    # cuBLAS closes the gap as k grows
    ratios = [rows[k][0] / rows[k][1] for k in FIGURE_KS]
    assert ratios[-1] < ratios[0]
    assert ratios[-1] < 1.5
    # cuBLAS throughput grows monotonically with matrix size
    cublas_curve = [rows[k][1] for k in FIGURE_KS]
    assert all(b > a for a, b in zip(cublas_curve, cublas_curve[1:]))
