"""Composed-mode chaos: the chaos-sched claims plus the recorded baseline.

Two jobs:

- assert the chaos-sched headline at the harness scale — stealing
  composed with checkpoint/restart recovery never falls behind the
  static map with recovery at 5/10/20% crash rates, and the serving
  half loses zero jobs under two mid-trace rank kills (the runner
  itself raises on any ledger or race finding, so a pass here is also
  a chaos test of the effectively-exactly-once contract);
- maintain ``BENCH_chaos.json`` at the repo root: the full-scale sweep
  (independent of ``REPRO_BENCH_SCALE``) whose deterministic outputs
  (makespans, restart counts, serving ledger counts) are pinned
  exactly.  Regenerate with ``REPRO_BENCH_WRITE=1 pytest
  benchmarks/test_chaos_sched.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.chaos_sched import run_chaos_sched

from benchmarks.conftest import bench_scale

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"


def test_stealing_with_recovery_beats_static(run_once, show):
    """Stealing+recovery wins every crash rate; serving loses nothing."""
    result = run_once(run_chaos_sched, bench_scale())
    show(result)
    for rate, row in result.data["rates"].items():
        assert row["stealing"] <= row["static"], rate
        # the crash schedule landed mid-trace on both configurations
        assert row["stealing_restarts"] == row["crashes"], rate
    serving = result.data["serving"]
    assert serving["chaos"]["dropped"] == 0
    assert serving["chaos"]["requeues"] > 0
    assert serving["chaos"]["dead_ranks"] == 2


def test_chaos_baseline_is_recorded_and_pinned():
    """BENCH_chaos.json matches the deterministic full-scale sweep."""
    result = run_chaos_sched(scale=1.0)
    payload = {
        "benchmark": "chaos-sched-baseline",
        "ranks": result.data["ranks"],
        "clean": result.data["clean"],
        "rates": {
            str(rate): row for rate, row in result.data["rates"].items()
        },
        "serving": result.data["serving"],
    }
    if os.environ.get("REPRO_BENCH_WRITE") == "1":
        BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        return
    assert BENCH_PATH.exists(), (
        "BENCH_chaos.json missing — regenerate with REPRO_BENCH_WRITE=1"
    )
    pinned = json.loads(BENCH_PATH.read_text())
    assert payload["ranks"] == pinned["ranks"]
    for side in ("static", "stealing"):
        assert payload["clean"][side] == pytest.approx(
            pinned["clean"][side], rel=1e-12
        )
    for rate, row in payload["rates"].items():
        want = pinned["rates"][rate]
        for key in ("crashes", "static_restarts", "stealing_restarts"):
            assert row[key] == want[key], (rate, key)
        for key in ("static", "stealing"):
            assert row[key] == pytest.approx(want[key], rel=1e-12), (
                rate,
                key,
            )
    for run, counts in payload["serving"].items():
        assert counts == pytest.approx(pinned["serving"][run]), run
