"""Table V — CPU (with/without rank reduction), GPU, hybrid; 1-8 nodes.

Coulomb, d=3, k=30, precision 1e-12.  Large tensors: the CPU working
set overflows the 16 MB aggregate L2; the locality process map runs out
of work above 6 nodes.  Anchored to the paper's 1-node CPU-only (no
rank reduction) time of 447 s.
"""

from repro.experiments.tables import run_table5

from benchmarks.conftest import bench_scale


def test_table5(run_once, show):
    """Regenerate Table 5 and assert its winner/factor claims."""
    result = run_once(run_table5, bench_scale())
    show(result)
    rows = result.data["rows"]

    # rank reduction buys ~2-3x on the CPU (paper: 447/147 = 3.0 at 1 node)
    assert 1.8 < rows[1][1] / rows[1][0] < 3.2
    # the GPU handles the out-of-cache tensors far better than the CPU
    assert rows[4][2] < 0.5 * rows[4][1]
    # hybrid is the best configuration from 2 nodes on
    for nodes in (2, 4, 6):
        cpu_rr, cpu, gpu, hybrid = rows[nodes]
        assert hybrid <= min(cpu_rr, cpu, gpu) * 1.05, nodes
    # the paper's signature: essentially no speedup from 6 to 8 nodes
    # (the coarse locality map has ~7 work chunks; ideal would be 1.33x)
    assert rows[6][3] / rows[8][3] < 1.25
    assert rows[6][0] / rows[8][0] < 1.25
