"""Table III — custom kernel vs cuBLAS, 2-16 nodes, even process map.

Coulomb, d=3, k=10, precision 1e-10, "work was distributed evenly to
all compute nodes".  Anchored so the 2-node custom-kernel run lands on
the paper's 88 s.
"""

from repro.experiments.tables import run_table3

from benchmarks.conftest import bench_scale


def test_table3(run_once, show):
    """Regenerate Table 3 and assert its winner/factor claims."""
    result = run_once(run_table3, bench_scale())
    show(result)
    rows = result.data["rows"]

    # shape: the custom kernel wins at every node count by ~2-3x
    for nodes, (custom, cublas) in rows.items():
        assert 1.7 < cublas / custom < 3.6, nodes
    # and the even map scales near-linearly from 2 to 16 nodes
    assert 5.5 < rows[2][0] / rows[16][0] < 8.8  # ideal 8x
