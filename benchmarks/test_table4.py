"""Table IV — custom kernel vs cuBLAS, 16-100 nodes.

Coulomb, d=3, k=10, precision 1e-11 — the paper states this application
consists of exactly 154,468 tasks, used verbatim (scaled by
REPRO_BENCH_SCALE if set).  Even process map; no time cell anchored.
"""

from repro.experiments.tables import run_table4

from benchmarks.conftest import bench_scale


def test_table4(run_once, show):
    """Regenerate Table 4 and assert its winner/factor claims."""
    result = run_once(run_table4, bench_scale())
    show(result)
    rows = result.data["rows"]

    for nodes, (custom, cublas) in rows.items():
        # paper ratios are 1.44-1.61 here; allow the same band widened
        assert 1.2 < cublas / custom < 3.6, nodes
    # scaling 16 -> 100 nodes is near-linear with the even map
    ideal = 100 / 16
    measured = rows[16][0] / rows[100][0]
    assert 0.6 * ideal < measured < 1.15 * ideal
