"""Work stealing vs the static process maps on skewed trees.

The acceptance claim of the dynamic scheduler: on a skewed refinement
tree at >= 500 simulated ranks, stealing improves the makespan over the
static :class:`~repro.dht.process_map.SubtreePartitionMap` placement
and cuts the load imbalance (max/mean busy seconds) by at least 25%,
while conserving work (every task executed exactly once — enforced
inside the engine and by ``repro.lint races`` on the ``stealing``
scenario).
"""

from __future__ import annotations

from repro.experiments.stealing import run_stealing_vs_static

from benchmarks.conftest import bench_scale


def _rows_at(result, ranks):
    rows = {
        row["scheduler"]: row
        for row in result.data["rows"]
        if row["ranks"] == ranks
    }
    assert rows, f"no sweep point at {ranks} ranks"
    return rows


def test_stealing_beats_static_maps_on_skewed_trees(run_once, show):
    """Stealing wins makespan and cuts imbalance >= 25% at 500 ranks."""
    result = run_once(run_stealing_vs_static, bench_scale())
    show(result)
    rows = _rows_at(result, 500)
    static = rows["subtree-static"]
    cost = rows["cost-static"]
    stealing = rows["subtree+stealing"]
    # headline: dynamic scheduling beats the paper's static placement
    assert stealing["makespan"] < static["makespan"]
    # and even the informed cost-partition static baseline
    assert stealing["makespan"] < cost["makespan"]
    # the issue's bar: imbalance (max/mean) reduced by at least 25%
    assert stealing["imbalance"] <= 0.75 * static["imbalance"]
    # idle ranks exist under the static maps, none once stealing is on
    assert static["idle_ranks"] > 0
    assert stealing["idle_ranks"] == 0
    # the win comes from actual migration, not pricing differences
    assert stealing["tasks_migrated"] > 0


def test_stealing_scales_with_rank_count(run_once, show):
    """Every sweep point keeps the makespan win and near-flat balance."""
    result = run_once(run_stealing_vs_static, bench_scale())
    show(result)
    by_ranks: dict[int, dict] = {}
    for row in result.data["rows"]:
        by_ranks.setdefault(row["ranks"], {})[row["scheduler"]] = row
    for ranks, rows in by_ranks.items():
        stealing = rows["subtree+stealing"]
        static = rows["subtree-static"]
        assert stealing["makespan"] < static["makespan"], ranks
        assert stealing["imbalance"] <= 0.75 * static["imbalance"], ranks
