"""Figure 6 — GFLOPS of batched (k^3, k) x (k, k) multiplications (4-D).

Same testbed as Figure 5, batches of 20 multiplications.  The 4-D
operands overflow the fused kernel's shared memory, so here cuBLAS
overtakes the custom kernel early — the reason the TDSE application
(Table VI) uses cuBLAS.
"""

from repro.experiments.figures import FIGURE_KS, run_fig6


def test_fig6(run_once, show):
    """Regenerate Figure 6 and assert its scaling-shape claims."""
    result = run_once(run_fig6)
    show(result)
    rows = result.data["rows"]

    # the crossover: custom competitive only at the smallest k
    assert rows[10][0] > rows[10][1]
    for k in (16, 20, 24, 28):
        assert rows[k][1] > rows[k][0], k
    # cuBLAS keeps climbing with matrix size (its favourable regime)
    cublas_curve = [rows[k][1] for k in FIGURE_KS]
    assert all(b > a for a, b in zip(cublas_curve, cublas_curve[1:]))
    # the fused kernel *degrades* with k here: shared-memory spill
    assert rows[28][0] < rows[12][0]
