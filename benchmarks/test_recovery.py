"""Checkpoint-interval ablation: Young/Daly beats both extremes.

Shape claims at full scale (60 batches, full-state snapshots ~10% of
the fault-free makespan each):

- never checkpointing loses a full replay window per crash, so its
  makespan grows steeply with the crash rate;
- checkpointing every batch pays the quadratic cumulative-state write
  bill up front at every rate;
- the Young/Daly period ``sqrt(2 C MTBF)`` undercuts both at every
  swept rate, and degrades gracefully as the rate rises.

At reduced ``REPRO_BENCH_SCALE`` the batch count shrinks and the
every-batch write bill with it, so only the against-never ordering is
asserted below 60 batches.
"""

from repro.experiments.recovery import CRASH_RATES, run_checkpoint_ablation

from benchmarks.conftest import bench_scale


def test_checkpoint_interval_ablation(run_once, show):
    """Checkpoint-interval sweep exposes the overhead/rework trade."""
    scale = bench_scale()
    result = run_once(run_checkpoint_ablation, scale)
    show(result)
    rates = result.data["rates"]
    assert set(rates) == set(CRASH_RATES)
    clean = result.data["clean"]
    for rate in CRASH_RATES:
        row = rates[rate]
        # checkpointing must beat paying a full replay window per crash
        assert row["young_daly"] < row["never"]
        # …while staying a bounded constant factor over fault-free
        assert row["young_daly"] < 2.0 * clean
        if scale >= 1.0:
            # at full batch counts the every-batch write bill loses too
            assert row["young_daly"] < row["every"]
    # the penalty of never checkpointing grows with the crash rate
    assert rates[0.20]["never"] > rates[0.05]["never"]
    # armed-but-unused recovery is asserted bit-identical inside the
    # experiment itself; re-state the headline number here
    assert result.data["clean"] > 0
