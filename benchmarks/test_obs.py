"""Observability at table scale: attribution and zero overhead.

Two shape claims ride on the :mod:`repro.obs` layer:

- at the pipeline ablation's scale the critical-path analyzer
  attributes at least half of each configuration's chain to the stage
  the paper blames (cpu serialized, gpu pipelined);
- arming the tracer and metrics registry is free — the simulated
  timeline of an observed run is bit-identical to an unobserved one.
"""

import dataclasses

from repro.experiments.common import make_runtime, single_node_tasks
from repro.experiments.profiling import run_pipeline_profile
from repro.obs.metrics import MetricsRegistry
from repro.runtime.trace import Tracer

from benchmarks.conftest import bench_scale, scaled


def test_critical_path_attribution(run_once, show):
    """Critical-path profile attributes the makespan to real stages."""
    result = run_once(run_pipeline_profile, bench_scale())
    show(result)
    data = result.data
    # the analyzer blames the stage the ablation blames, decisively
    assert data["serialized_bound_stage"] == "cpu"
    assert data["serialized_bound_share"] >= 0.5
    assert data["pipelined_bound_stage"] == "gpu"
    assert data["pipelined_bound_share"] >= 0.5
    # and the overlap win it explains is the ablation's ~1.4x
    assert 1.2 < data["speedup"] < 1.6
    assert data["predicted_speedup"] > 1.1


def test_armed_observers_leave_the_timeline_bit_identical(run_once):
    """Arming observers must not perturb the simulated timeline."""
    n = scaled(400)

    def run(tracer, registry):
        runtime = make_runtime(
            "hybrid", tracer=tracer, registry=registry, max_batch_size=10
        )
        return runtime.execute(single_node_tasks(n))

    unobserved = run(None, None)
    observed = run_once(run, Tracer(), MetricsRegistry())
    assert dataclasses.asdict(observed) == dataclasses.asdict(unobserved)
