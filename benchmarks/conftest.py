"""Benchmark harness helpers.

Every experiment regenerates one table or figure of the paper: it runs
the corresponding workload through the simulation, prints a
paper-vs-measured report table, and asserts only the *shape* claims
(who wins, by roughly what factor, where scaling stops) — absolute
seconds are model outputs, anchored as documented in EXPERIMENTS.md.

``REPRO_BENCH_SCALE`` (float, default 1.0) scales workload task counts
for quick runs, e.g. ``REPRO_BENCH_SCALE=0.1 pytest benchmarks/``.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    """The workload scale factor from ``REPRO_BENCH_SCALE`` (default 1)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n_tasks: int) -> int:
    """``n_tasks`` scaled by :func:`bench_scale`, floored at 100."""
    return max(100, int(n_tasks * bench_scale()))


@pytest.fixture()
def run_once(benchmark):
    """Run a deterministic simulation exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


@pytest.fixture()
def show(capsys):
    """Print a report table past pytest's output capture, so the
    paper-vs-measured rows appear in the benchmark log itself."""

    def _show(result):
        with capsys.disabled():
            result.print()

    return _show
