"""Table I — CPU thread scale-up vs GPU stream scale-up vs hybrid.

Coulomb, d=3, k=10, precision 1e-8, no rank reduction, batches of 60.
The task count is anchored so the modeled 1-thread CPU time matches the
paper's 132.5 s; every other cell is a model prediction.
"""

from repro.experiments.tables import run_table1

from benchmarks.conftest import bench_scale


def test_table1(run_once, show):
    """Regenerate Table 1 and assert its winner/factor claims."""
    result = run_once(run_table1, bench_scale())
    show(result)
    cpu_rows = result.data["cpu"]
    gpu_rows = result.data["gpu"]
    hybrid = result.data["hybrid"]
    optimal = result.data["optimal"]

    # shape assertions (paper's qualitative claims)
    assert 6.0 < cpu_rows[1] / cpu_rows[16] < 7.6  # ~6.7x thread scale-up
    assert 2.5 < gpu_rows[1] / gpu_rows[5] < 3.3  # ~2.9x stream scale-up
    # streams saturate: the 5->6 gain is smaller than the 4->5 gain
    assert (gpu_rows[4] - gpu_rows[5]) > (gpu_rows[5] - gpu_rows[6])
    assert hybrid < min(cpu_rows[16], gpu_rows[5])  # hybrid wins
    assert hybrid >= 0.95 * optimal  # close to the overlap bound
