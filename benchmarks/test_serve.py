"""The serving layer: ablation claims plus the recorded baseline.

Two jobs:

- assert the serve-ablation headline at the harness scale — shedding +
  autoscaling beats the naive admit-all FIFO front door on both p99
  latency and goodput (the claim must hold down to
  ``REPRO_BENCH_SCALE=0.1``, the CI smoke setting);
- maintain ``BENCH_serve.json`` at the repo root: one fixed seeded
  scenario (independent of ``REPRO_BENCH_SCALE``) whose deterministic
  outputs (p99, goodput, job/batch/event counts) are pinned exactly,
  with the wall-dependent events/second throughput recorded for trend
  reading only.  Regenerate with ``REPRO_BENCH_WRITE=1 pytest
  benchmarks/test_serve.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.serve import bursty_trace, run_serve_ablation
from repro.serve.admission import AdmissionConfig
from repro.serve.arrivals import BurstyArrivals
from repro.serve.autoscaler import AutoscalerConfig
from repro.serve.jobs import SloClass
from repro.serve.service import ServeConfig

from benchmarks.conftest import bench_scale

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: the pinned scenario — fixed regardless of REPRO_BENCH_SCALE
BASELINE_TRACE = dict(
    rate=30.0,
    burst_rate=150.0,
    period=2.0,
    burst_fraction=0.3,
    horizon=2.0,
    n_tenants=4,
    seed=17,
)


def baseline_config() -> ServeConfig:
    """The full serving stack: shedding + autoscaling + batching."""
    return ServeConfig(
        classes=(
            SloClass("interactive", 0, 0.05),
            SloClass("standard", 1, 0.5),
            SloClass("batch", 2, 2.0),
        ),
        admission=AdmissionConfig(
            tenant_rate=12.0, tenant_burst=8.0, max_queue_items=64
        ),
        autoscaler=AutoscalerConfig(
            min_ranks=1,
            max_ranks=6,
            interval=0.1,
            high_water=0.02,
            low_water=0.005,
            step=2,
            cooldown=0.2,
        ),
        max_batch_size=8,
    )


def run_baseline():
    """One serve run of the pinned scenario, with its wall time."""
    from repro.cluster.simulation import ClusterSimulation
    from repro.dht.process_map import HashProcessMap

    requests = BurstyArrivals(**BASELINE_TRACE).requests()
    sim = ClusterSimulation(1, HashProcessMap(1), mode="hybrid")
    start = time.perf_counter()
    result = sim.serve(requests, config=baseline_config())
    wall = time.perf_counter() - start
    return result, wall


def test_serving_beats_naive_fifo(run_once, show):
    """Shedding + autoscaling wins p99 and goodput over naive FIFO."""
    result = run_once(run_serve_ablation, bench_scale())
    show(result)
    rows = {row["config"]: row for row in result.data["rows"]}
    naive, full = rows["naive-fifo"], rows["full"]
    assert full["p99"] < naive["p99"]
    assert full["goodput"] > naive["goodput"]
    # shedding is doing real work under the bursts...
    assert full["shed"] > 0
    # ...and so is the autoscaler
    assert full["pool_peak"] > 1
    # the naive baseline admits everything and still loses
    assert naive["shed"] == 0
    # admitted jobs always complete (open-loop drain, exactly-once)
    for row in rows.values():
        assert row["completed"] == row["admitted"]


def test_serve_baseline_is_recorded_and_pinned(show):
    """BENCH_serve.json matches the deterministic scenario outputs."""
    result, wall = run_baseline()
    payload = {
        "benchmark": "serve-baseline",
        "scenario": dict(BASELINE_TRACE, config="full"),
        "n_jobs": result.n_arrived,
        "n_admitted": result.n_admitted,
        "n_shed": result.n_shed,
        "n_on_time": result.n_on_time,
        "n_batches": result.n_batches,
        "n_events": result.n_events,
        "p99_seconds": result.latency_percentile(99.0),
        "goodput_per_second": result.goodput,
        # wall-dependent — recorded for trend reading, never asserted
        "events_per_second": result.n_events / wall if wall > 0 else 0.0,
        "wall_seconds": wall,
    }
    if os.environ.get("REPRO_BENCH_WRITE") == "1":
        BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        return
    assert BENCH_PATH.exists(), (
        "BENCH_serve.json missing — regenerate with REPRO_BENCH_WRITE=1"
    )
    pinned = json.loads(BENCH_PATH.read_text())
    for key in (
        "n_jobs",
        "n_admitted",
        "n_shed",
        "n_on_time",
        "n_batches",
        "n_events",
    ):
        assert payload[key] == pinned[key], key
    assert payload["p99_seconds"] == pytest.approx(
        pinned["p99_seconds"], rel=1e-12
    )
    assert payload["goodput_per_second"] == pytest.approx(
        pinned["goodput_per_second"], rel=1e-12
    )
