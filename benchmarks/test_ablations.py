"""Ablations of the paper's design choices.

Each ablation removes one mechanism of the MADNESS library extensions
and measures what it was worth, quantifying the paper's Section I
bullet list ("aggregate the computation, aggregate the data inputs,
overlap CPU with GPU computation") plus the Section VI future work.
"""

import pytest

from repro.experiments.ablations import (
    run_batching_ablation,
    run_dynamic_parallelism_ablation,
    run_naive_port_ablation,
    run_overlap_ablation,
    run_transfer_ablation,
)

from benchmarks.conftest import bench_scale


def test_ablation_data_aggregation(run_once, show):
    """Batched pinned transfers beat per-task pageable/pinned copies."""
    result = run_once(run_transfer_ablation)
    show(result)
    assert result.data["pageable"] > 1.5 * result.data["batched"]
    assert result.data["pinned_each"] > 20 * result.data["batched"]


def test_ablation_computation_batching(run_once, show):
    """Aggregating tasks into batches amortises transfer latency."""
    result = run_once(run_batching_ablation, bench_scale())
    show(result)
    results = result.data["results"]
    # tiny batches cannot fill the streams and pay transfer latency per task
    assert results["no batching (1 task)"] > 1.5 * results["batch of 60 (paper)"]


def test_ablation_hybrid_overlap(run_once, show):
    """CPU+GPU overlap beats either device alone."""
    result = run_once(run_overlap_ablation, bench_scale())
    show(result)
    times = result.data["times"]
    assert times["hybrid"] < min(times["cpu"], times["gpu"])


def test_ablation_naive_port(run_once, show):
    """The paper's extensions beat a naive per-task GPU port."""
    result = run_once(run_naive_port_ablation, bench_scale())
    show(result)
    out = result.data["out"]
    batched = out["MADNESS extensions (paper)"]
    naive = out["naive per-task port"]
    assert naive[0] > 2.0 * batched[0]
    assert naive[1] > 5.0 * batched[1]


def test_ablation_dynamic_parallelism(run_once, show):
    """Dynamic-parallelism rank reduction helps Kepler, not Fermi."""
    result = run_once(run_dynamic_parallelism_ablation)
    show(result)
    out = result.data["out"]
    # Fermi: exactly no effect, as the paper measured
    assert out["Fermi M2090, rank reduction (no-op)"] == out[
        "Fermi M2090, no rank reduction"
    ]
    # Kepler: the saving materialises
    kepler_gain = (
        out["Kepler K20X, no rank reduction"]
        / out["Kepler K20X, rank reduction (dyn. par.)"]
    )
    assert 1.6 < kepler_gain < 2.4


def test_ablation_flush_interval(run_once, show):
    """The default flush interval sits near the makespan optimum."""
    from repro.experiments.ablations import run_flush_interval_ablation

    result = run_once(run_flush_interval_ablation, bench_scale())
    show(result)
    out = result.data["out"]
    best = min(out.values())
    assert out[0.005] < 1.2 * best


def test_ablation_pipeline(run_once, show):
    """Overlapping batches beat one-batch-at-a-time serialisation."""
    from repro.experiments.ablations import run_pipeline_ablation

    result = run_once(run_pipeline_ablation, bench_scale())
    show(result)
    # the acceptance bar: overlapping batches must strictly beat the
    # one-batch-at-a-time baseline on the irregular mixed-kind workload
    assert result.data["pipelined"] < result.data["serialized"]
    assert result.data["speedup"] > 1.1


def test_ablation_adaptive_dispatch(run_once, show):
    """EWMA dispatch recovers most of a 2x calibration error."""
    from repro.experiments.ablations import run_adaptive_ablation

    result = run_once(run_adaptive_ablation, bench_scale())
    show(result)
    times = result.data["times"]
    reference = times["well-calibrated static (reference)"]
    static_bad = times["2x-miscalibrated static"]
    adaptive = times["2x-miscalibrated adaptive (EWMA)"]
    # miscalibration costs the static dispatcher real time; the EWMA
    # loop claws most of it back
    assert static_bad > 1.1 * reference
    assert adaptive < static_bad
    assert adaptive < reference + 0.5 * (static_bad - reference)
    # the planned CPU fraction converges onto the reference's
    ks = result.data["cpu_fractions"]["2x-miscalibrated adaptive (EWMA)"]
    ref_k = result.data["cpu_fractions"]["well-calibrated static (reference)"][-1]
    assert ks[-1] == pytest.approx(ref_k, abs=0.1 * ref_k)
