"""Table VI — 4-D TDSE on 100-500 nodes: CPU vs GPU (cuBLAS) vs hybrid.

k=14, precision 1e-14, rank reduction on the CPU side, 542,113 tasks
(the paper's exact count), cost-partition locality map.  Anchored to
the paper's 100-node CPU-only time (985 s); everything else predicted.
"""

from repro.experiments.tables import run_table6

from benchmarks.conftest import bench_scale


def test_table6(run_once, show):
    """Regenerate Table 6 and assert its winner/factor claims."""
    result = run_once(run_table6, bench_scale())
    show(result)
    rows = result.data["rows"]

    # headline: hybrid well over 2x the CPU-only version at large
    # partitions (paper: 2.3-2.4x; our cuBLAS model is somewhat more
    # favourable on 4-D shapes, see EXPERIMENTS.md)
    for nodes in (300, 400, 500):
        cpu, _gpu, hybrid = rows[nodes]
        assert 1.7 < cpu / hybrid < 3.9, nodes
    # GPU-only beats CPU-only (paper: 1.9x at 500 nodes)
    cpu500, gpu500, _h = rows[500]
    assert 1.2 < cpu500 / gpu500 < 3.4
    # scaling 100 -> 500 nodes is clearly sub-linear (locality map)
    for column in range(3):
        scaling = rows[100][column] / rows[500][column]
        assert scaling < 4.0, column
    # but adding nodes does not hurt
    assert rows[500][2] <= rows[100][2] * 1.05
