"""The DES core: engine equivalence plus the events/sec baseline.

Three jobs (``make des-smoke`` runs all of them):

- assert the differential claim live at the harness scale — the heap
  and calendar engines produce identical ``ClusterResult`` outputs on
  the stealing scenario (the claim must hold down to
  ``REPRO_BENCH_SCALE=0.1``, the CI smoke setting);
- assert the live engine speedup at the harness scale — the fast core
  must beat the legacy heap core by the scale-appropriate floor (≥10×
  at the full 5000-rank scenario, ≥1.5× even at scale 0.1 where the
  quadratic board scan barely bites);
- maintain ``BENCH_cluster.json`` at the repo root: the fixed
  5000-rank stealing scenario (independent of ``REPRO_BENCH_SCALE``)
  whose deterministic outputs (makespan, event/steal/migration
  counts) are pinned exactly, with both engines' wall-dependent
  events/second recorded at write time and the measured speedup —
  required ≥10× — audited from the committed file on every run.
  Regenerate with ``REPRO_BENCH_WRITE=1 pytest
  benchmarks/test_des_core.py`` (the write-mode heap run at 5000
  ranks takes several minutes; that cost is the point).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cluster.simulation import ClusterResult, ClusterSimulation
from repro.cluster.stealing import StealingConfig
from repro.dht.process_map import SubtreePartitionMap
from repro.experiments.stealing import skewed_workload
from repro.runtime.events import des_engine

from benchmarks.conftest import bench_scale

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

#: the pinned scenario — fixed regardless of REPRO_BENCH_SCALE
BASELINE_RANKS = 5000


def _run_stealing(ranks: int, engine: str) -> tuple[ClusterResult, float]:
    """One stealing run of the canonical skewed sweep point."""
    workload = skewed_workload(ranks)
    sim = ClusterSimulation(
        ranks,
        SubtreePartitionMap(ranks, anchor_level=2),
        mode="hybrid",
        stealing=StealingConfig(
            enabled=True, chunk_size=4, executor="analytic"
        ),
    )
    with des_engine(engine):
        start = time.perf_counter()
        result = sim.run(workload.tasks)
        wall = time.perf_counter() - start
    return result, wall


def _deterministic_fields(result: ClusterResult) -> dict:
    """The engine-independent outputs (asserted exactly)."""
    return {
        "makespan_seconds": result.makespan_seconds,
        "n_events": result.total_events,
        "total_tasks": result.total_tasks,
        "total_messages": result.total_messages,
        "total_message_bytes": result.total_message_bytes,
        "imbalance": result.imbalance.imbalance,
    }


def _smoke_ranks() -> int:
    return max(100, int(BASELINE_RANKS * bench_scale() / 10) * 10)


def test_engines_identical_at_harness_scale():
    """Heap and calendar engines agree field for field, live."""
    ranks = _smoke_ranks()
    heap, _ = _run_stealing(ranks, "heap")
    calendar, _ = _run_stealing(ranks, "calendar")
    assert _deterministic_fields(heap) == _deterministic_fields(calendar)
    for rank_h, rank_c in zip(heap.node_results, calendar.node_results):
        assert rank_h.timeline.total_seconds == rank_c.timeline.total_seconds  # repro: noqa[FLT001] - bit-identity across engines is the contract under test
        assert rank_h.timeline.cpu_compute_busy == rank_c.timeline.cpu_compute_busy  # repro: noqa[FLT001] - bit-identity across engines is the contract under test
        assert rank_h.n_tasks == rank_c.n_tasks


def test_fast_core_speedup_at_harness_scale():
    """The calendar core beats the heap core live; the floor scales
    with the scenario (the heap's board scan is quadratic in ranks, so
    the full 10x only shows at the full 5000-rank point)."""
    ranks = _smoke_ranks()
    heap, wall_heap = _run_stealing(ranks, "heap")
    calendar, wall_cal = _run_stealing(ranks, "calendar")
    assert heap.total_events == calendar.total_events
    floor = 10.0 if bench_scale() >= 1.0 else 1.5
    speedup = wall_heap / wall_cal if wall_cal > 0 else float("inf")
    assert speedup >= floor, (
        f"calendar/heap speedup {speedup:.2f}x below the {floor}x floor "
        f"at {ranks} ranks"
    )


def test_des_baseline_is_recorded_and_pinned():
    """BENCH_cluster.json pins the 5000-rank scenario: deterministic
    outputs exactly, recorded speedup >= 10x (the auditable claim)."""
    write = os.environ.get("REPRO_BENCH_WRITE") == "1"
    if write:
        calendar, wall_cal = _run_stealing(BASELINE_RANKS, "calendar")
        heap, wall_heap = _run_stealing(BASELINE_RANKS, "heap")
        assert _deterministic_fields(heap) == _deterministic_fields(calendar)
        payload = {
            "benchmark": "des-core",
            "scenario": {
                "ranks": BASELINE_RANKS,
                "workload": "skewed_workload",
                "chunk_size": 4,
                "executor": "analytic",
            },
            "pinned": _deterministic_fields(calendar),
            # wall-dependent — recorded for trend reading; only the
            # speedup ratio is asserted (from the committed file)
            "heap": {
                "wall_seconds": wall_heap,
                "events_per_second": heap.total_events / wall_heap,
            },
            "calendar": {
                "wall_seconds": wall_cal,
                "events_per_second": calendar.total_events / wall_cal,
            },
            "speedup": wall_heap / wall_cal,
        }
        BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        return
    assert BENCH_PATH.exists(), (
        "BENCH_cluster.json missing — regenerate with REPRO_BENCH_WRITE=1"
    )
    pinned = json.loads(BENCH_PATH.read_text())
    assert pinned["scenario"]["ranks"] == BASELINE_RANKS
    assert pinned["speedup"] >= 10.0, (
        "the committed baseline no longer shows the >=10x events/sec "
        "claim — regenerate and investigate before shipping"
    )
    assert (
        pinned["calendar"]["events_per_second"]
        >= 10.0 * pinned["heap"]["events_per_second"]
    )
    if bench_scale() >= 1.0:
        # at full scale, re-verify the deterministic outputs against
        # the committed pin (the calendar run takes ~20 s; the heap
        # side of the claim is the recorded baseline)
        calendar, _ = _run_stealing(BASELINE_RANKS, "calendar")
        assert _deterministic_fields(calendar) == pinned["pinned"]
